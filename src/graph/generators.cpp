#include "graph/generators.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "graph/components.hpp"
#include "support/rng.hpp"

namespace ppsi::gen {
namespace {

using planar::EmbeddedGraph;

std::vector<std::vector<Vertex>> rotations_of(const EmbeddedGraph& eg) {
  const Graph& g = eg.graph();
  std::vector<std::vector<Vertex>> rot(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto nb = g.neighbors(v);
    rot[v].assign(nb.begin(), nb.end());
  }
  return rot;
}

}  // namespace

Graph path_graph(Vertex n) {
  EdgeList edges;
  for (Vertex i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::from_edges(n, edges);
}

Graph cycle_graph(Vertex n) {
  support::require(n >= 3, "cycle_graph: n >= 3 required");
  EdgeList edges;
  for (Vertex i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return Graph::from_edges(n, edges);
}

Graph star_graph(Vertex n) {
  support::require(n >= 1, "star_graph: n >= 1 required");
  EdgeList edges;
  for (Vertex i = 1; i < n; ++i) edges.emplace_back(0, i);
  return Graph::from_edges(n, edges);
}

Graph complete_graph(Vertex n) {
  EdgeList edges;
  for (Vertex i = 0; i < n; ++i)
    for (Vertex j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  return Graph::from_edges(n, edges);
}

Graph complete_bipartite(Vertex a, Vertex b) {
  EdgeList edges;
  for (Vertex i = 0; i < a; ++i)
    for (Vertex j = 0; j < b; ++j) edges.emplace_back(i, a + j);
  return Graph::from_edges(a + b, edges);
}

Graph grid_graph(Vertex rows, Vertex cols) {
  EdgeList edges;
  const auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph::from_edges(rows * cols, edges);
}

Graph random_tree(Vertex n, std::uint64_t seed) {
  support::Rng rng(seed, 0x7ee5);
  EdgeList edges;
  for (Vertex v = 1; v < n; ++v)
    edges.emplace_back(v, static_cast<Vertex>(rng.next_below(v)));
  return Graph::from_edges(n, edges);
}

Graph gnp(Vertex n, double p, std::uint64_t seed) {
  support::Rng rng(seed, 0x6e9);
  EdgeList edges;
  for (Vertex i = 0; i < n; ++i)
    for (Vertex j = i + 1; j < n; ++j)
      if (rng.next_double() < p) edges.emplace_back(i, j);
  return Graph::from_edges(n, edges);
}

Graph disjoint_union(const std::vector<Graph>& parts) {
  Vertex total = 0;
  EdgeList edges;
  for (const Graph& part : parts) {
    for (const auto& [u, v] : part.edge_list())
      edges.emplace_back(total + u, total + v);
    total += part.num_vertices();
  }
  return Graph::from_edges(total, edges);
}

// ---- Embedded planar graphs ----

planar::EmbeddedGraph embedded_cycle(Vertex n) {
  support::require(n >= 3, "embedded_cycle: n >= 3 required");
  std::vector<std::vector<Vertex>> rot(n);
  for (Vertex i = 0; i < n; ++i)
    rot[i] = {static_cast<Vertex>((i + n - 1) % n),
              static_cast<Vertex>((i + 1) % n)};
  return EmbeddedGraph::from_rotations(rot);
}

planar::EmbeddedGraph embedded_grid(Vertex rows, Vertex cols) {
  support::require(rows >= 1 && cols >= 1 && rows * cols >= 2,
                   "embedded_grid: at least two vertices required");
  const auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  std::vector<std::vector<Vertex>> rot(rows * cols);
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      auto& list = rot[id(r, c)];
      // Counterclockwise geometric order: up, left, down, right.
      if (r > 0) list.push_back(id(r - 1, c));
      if (c > 0) list.push_back(id(r, c - 1));
      if (r + 1 < rows) list.push_back(id(r + 1, c));
      if (c + 1 < cols) list.push_back(id(r, c + 1));
    }
  }
  return EmbeddedGraph::from_rotations(rot);
}

planar::EmbeddedGraph wheel(Vertex k) {
  support::require(k >= 3, "wheel: rim size >= 3 required");
  std::vector<std::vector<Vertex>> faces;
  const Vertex hub = k;
  for (Vertex i = 0; i < k; ++i)
    faces.push_back({hub, i, (i + 1) % k});
  std::vector<Vertex> outer(k);
  for (Vertex i = 0; i < k; ++i) outer[i] = k - 1 - i;
  faces.push_back(outer);
  return EmbeddedGraph::from_faces(k + 1, faces);
}

planar::EmbeddedGraph tetrahedron() {
  return EmbeddedGraph::from_faces(
      4, {{0, 1, 2}, {0, 2, 3}, {0, 3, 1}, {1, 3, 2}});
}

planar::EmbeddedGraph octahedron() {
  std::vector<std::vector<Vertex>> faces;
  const auto e = [](Vertex i) { return static_cast<Vertex>(1 + (i % 4)); };
  for (Vertex i = 0; i < 4; ++i) {
    faces.push_back({0, e(i), e(i + 1)});
    faces.push_back({5, e(i + 1), e(i)});
  }
  return EmbeddedGraph::from_faces(6, faces);
}

planar::EmbeddedGraph icosahedron() {
  std::vector<std::vector<Vertex>> faces;
  const auto u = [](Vertex i) { return static_cast<Vertex>(1 + (i % 5)); };
  const auto l = [](Vertex i) { return static_cast<Vertex>(6 + (i % 5)); };
  for (Vertex i = 0; i < 5; ++i) {
    faces.push_back({0, u(i), u(i + 1)});
    faces.push_back({u(i), l(i), u(i + 1)});
    faces.push_back({u(i + 1), l(i), l(i + 1)});
    faces.push_back({11, l(i + 1), l(i)});
  }
  return EmbeddedGraph::from_faces(12, faces);
}

planar::EmbeddedGraph antiprism(Vertex k) {
  support::require(k >= 3, "antiprism: k >= 3 required");
  std::vector<std::vector<Vertex>> faces;
  const auto t = [k](Vertex i) { return static_cast<Vertex>(i % k); };
  const auto b = [k](Vertex i) { return static_cast<Vertex>(k + (i % k)); };
  std::vector<Vertex> top(k), bottom(k);
  for (Vertex i = 0; i < k; ++i) top[i] = t(i);
  for (Vertex i = 0; i < k; ++i) bottom[i] = b(k - 1 - i);
  faces.push_back(top);
  faces.push_back(bottom);
  for (Vertex i = 0; i < k; ++i) {
    faces.push_back({t(i), b(i), t(i + 1)});
    faces.push_back({t(i + 1), b(i), b(i + 1)});
  }
  return EmbeddedGraph::from_faces(2 * k, faces);
}

planar::EmbeddedGraph bipyramid(Vertex k) {
  support::require(k >= 3, "bipyramid: k >= 3 required");
  std::vector<std::vector<Vertex>> faces;
  const Vertex a = k;
  const Vertex bb = k + 1;
  for (Vertex i = 0; i < k; ++i) {
    const Vertex j = (i + 1) % k;
    faces.push_back({a, i, j});
    faces.push_back({bb, j, i});
  }
  return EmbeddedGraph::from_faces(k + 2, faces);
}

planar::EmbeddedGraph apollonian(Vertex n, std::uint64_t seed) {
  support::require(n >= 3, "apollonian: n >= 3 required");
  support::Rng rng(seed, 0xa901);
  std::vector<std::array<Vertex, 3>> faces = {{0, 1, 2}, {0, 2, 1}};
  faces.reserve(2 * n);
  for (Vertex x = 3; x < n; ++x) {
    const std::size_t f = rng.next_below(faces.size());
    const auto [a, b, c] = faces[f];
    faces[f] = {a, b, x};
    faces.push_back({b, c, x});
    faces.push_back({c, a, x});
  }
  std::vector<std::vector<Vertex>> face_lists;
  face_lists.reserve(faces.size());
  for (const auto& [a, b, c] : faces) face_lists.push_back({a, b, c});
  return EmbeddedGraph::from_faces(n, face_lists);
}

planar::EmbeddedGraph loop_subdivide(const planar::EmbeddedGraph& eg) {
  const Graph& g = eg.graph();
  const planar::FaceSet fs = eg.extract_faces();
  // Midpoint vertex per undirected edge, indexed by the smaller half-edge.
  const std::size_t hn = g.num_half_edges();
  std::vector<Vertex> mid_of(hn, kNoVertex);
  Vertex next_id = g.num_vertices();
  for (planar::HalfEdge h = 0; h < hn; ++h) {
    if (h < eg.twin(h)) {
      mid_of[h] = next_id++;
      mid_of[eg.twin(h)] = mid_of[h];
    }
  }
  std::vector<std::vector<Vertex>> faces;
  faces.reserve(4 * fs.num_faces());
  for (std::size_t f = 0; f < fs.num_faces(); ++f) {
    const auto cycle = fs.face(f);
    support::require(cycle.size() == 3,
                     "loop_subdivide: triangulation of the sphere required");
    const Vertex a = eg.source(cycle[0]);
    const Vertex b = eg.source(cycle[1]);
    const Vertex c = eg.source(cycle[2]);
    const Vertex mab = mid_of[cycle[0]];
    const Vertex mbc = mid_of[cycle[1]];
    const Vertex mca = mid_of[cycle[2]];
    faces.push_back({a, mab, mca});
    faces.push_back({b, mbc, mab});
    faces.push_back({c, mca, mbc});
    faces.push_back({mab, mbc, mca});
  }
  return EmbeddedGraph::from_faces(next_id, faces);
}

planar::EmbeddedGraph loop_subdivide(planar::EmbeddedGraph eg, int rounds) {
  for (int i = 0; i < rounds; ++i) eg = loop_subdivide(eg);
  return eg;
}

planar::EmbeddedGraph delete_random_edges(const planar::EmbeddedGraph& eg,
                                          std::size_t count,
                                          std::uint64_t seed) {
  support::Rng rng(seed, 0xde1);
  auto rot = rotations_of(eg);
  const EdgeList edges = eg.graph().edge_list();
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.next_below(i)]);
  const auto erase_neighbor = [&rot](Vertex v, Vertex w) {
    auto& list = rot[v];
    list.erase(std::find(list.begin(), list.end(), w));
  };
  std::size_t removed = 0;
  for (std::size_t idx : order) {
    if (removed == count) break;
    const auto [u, v] = edges[idx];
    if (rot[u].size() <= 1 || rot[v].size() <= 1) continue;
    const std::vector<Vertex> saved_u = rot[u];
    const std::vector<Vertex> saved_v = rot[v];
    erase_neighbor(u, v);
    erase_neighbor(v, u);
    // Deleting an edge from an embedding stays a valid embedding; only a
    // bridge deletion (which disconnects the graph) must be undone.
    const Graph trial = Graph::from_adjacency(rot);
    if (connected_components(trial).count != 1) {
      rot[u] = saved_u;
      rot[v] = saved_v;
      continue;
    }
    ++removed;
  }
  return EmbeddedGraph::from_rotations(rot);
}

}  // namespace ppsi::gen
