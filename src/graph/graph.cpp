#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>

#include "support/parallel.hpp"

namespace ppsi {

Graph Graph::from_edges(Vertex n, const EdgeList& edges) {
  Graph g;
  g.n_ = n;
  g.sorted_ = true;
  // Count directed degrees (skipping self-loops).
  std::vector<std::uint32_t> counts(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges) {
    support::require(u < n && v < n, "Graph::from_edges: endpoint out of range");
    if (u == v) continue;
    ++counts[u];
    ++counts[v];
  }
  std::vector<std::uint32_t> offsets(counts);
  support::exclusive_scan_inplace(offsets);
  std::vector<Vertex> adj(offsets[n]);
  {
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto& [u, v] : edges) {
      if (u == v) continue;
      adj[cursor[u]++] = v;
      adj[cursor[v]++] = u;
    }
  }
  // Sort each adjacency list and deduplicate parallel edges.
  std::vector<std::uint32_t> new_counts(static_cast<std::size_t>(n) + 1, 0);
  support::parallel_for(0, n, [&](std::size_t v) {
    auto* lo = adj.data() + offsets[v];
    auto* hi = adj.data() + offsets[v + 1];
    std::sort(lo, hi);
    new_counts[v] = static_cast<std::uint32_t>(std::unique(lo, hi) - lo);
  });
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (Vertex v = 0; v < n; ++v) g.offsets_[v] = new_counts[v];
  g.offsets_[n] = 0;
  const std::uint32_t total = support::exclusive_scan_inplace(g.offsets_);
  g.adj_.resize(total);
  support::parallel_for(0, n, [&](std::size_t v) {
    std::copy_n(adj.data() + offsets[v], new_counts[v],
                g.adj_.data() + g.offsets_[v]);
  });
  return g;
}

Graph Graph::from_adjacency(const std::vector<std::vector<Vertex>>& adjacency) {
  Graph g;
  g.n_ = static_cast<Vertex>(adjacency.size());
  g.sorted_ = false;
  g.offsets_.assign(adjacency.size() + 1, 0);
  for (std::size_t v = 0; v < adjacency.size(); ++v)
    g.offsets_[v] = static_cast<std::uint32_t>(adjacency[v].size());
  g.offsets_[adjacency.size()] = 0;
  const std::uint32_t total = support::exclusive_scan_inplace(g.offsets_);
  g.adj_.resize(total);
  for (std::size_t v = 0; v < adjacency.size(); ++v) {
    std::copy(adjacency[v].begin(), adjacency[v].end(),
              g.adj_.begin() + g.offsets_[v]);
    for (Vertex w : adjacency[v])
      support::require(w < g.n_ && w != static_cast<Vertex>(v),
                       "Graph::from_adjacency: bad neighbor");
  }
  return g;
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  if (u >= n_ || v >= n_) return false;
  // Scan the smaller endpoint's list.
  if (degree(v) < degree(u)) std::swap(u, v);
  const auto nb = neighbors(u);
  if (sorted_) return std::binary_search(nb.begin(), nb.end(), v);
  return std::find(nb.begin(), nb.end(), v) != nb.end();
}

EdgeList Graph::edge_list() const {
  EdgeList edges;
  edges.reserve(num_edges());
  for (Vertex u = 0; u < n_; ++u)
    for (Vertex v : neighbors(u))
      if (u < v) edges.emplace_back(u, v);
  return edges;
}

std::uint32_t Graph::max_degree() const {
  std::uint32_t best = 0;
  for (Vertex v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

}  // namespace ppsi
