#include "graph/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/types.hpp"

namespace ppsi::io {

Graph read_edge_list(std::istream& in) {
  std::size_t n = 0, m = 0;
  if (!(in >> n >> m))
    throw std::invalid_argument("read_edge_list: missing header");
  EdgeList edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    std::uint64_t u = 0, v = 0;
    if (!(in >> u >> v))
      throw std::invalid_argument("read_edge_list: truncated edge list");
    if (u >= n || v >= n)
      throw std::invalid_argument("read_edge_list: vertex out of range");
    edges.emplace_back(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  return Graph::from_edges(static_cast<Vertex>(n), edges);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edge_list()) out << u << ' ' << v << '\n';
}

Graph read_dimacs(std::istream& in) {
  std::string line;
  std::size_t n = 0, m = 0;
  EdgeList edges;
  bool has_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'c') continue;
    if (kind == 'p') {
      if (has_header)
        throw std::invalid_argument("read_dimacs: duplicate problem line");
      std::string fmt;
      if (!(ls >> fmt >> n >> m) || (fmt != "edge" && fmt != "col"))
        throw std::invalid_argument("read_dimacs: bad problem line");
      has_header = true;
      edges.reserve(m);
      continue;
    }
    if (kind == 'e') {
      if (!has_header)
        throw std::invalid_argument("read_dimacs: edge before problem line");
      std::uint64_t u = 0, v = 0;
      if (!(ls >> u >> v) || u < 1 || v < 1 || u > n || v > n)
        throw std::invalid_argument("read_dimacs: bad edge line");
      edges.emplace_back(static_cast<Vertex>(u - 1),
                         static_cast<Vertex>(v - 1));
      continue;
    }
    throw std::invalid_argument("read_dimacs: unknown line kind");
  }
  if (!has_header) throw std::invalid_argument("read_dimacs: empty input");
  if (edges.size() != m)
    throw std::invalid_argument(
        "read_dimacs: edge count does not match problem line");
  return Graph::from_edges(static_cast<Vertex>(n), edges);
}

void write_dimacs(const Graph& g, std::ostream& out) {
  out << "c written by ppsi\n";
  out << "p edge " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edge_list())
    out << "e " << (u + 1) << ' ' << (v + 1) << '\n';
}

namespace {

bool is_dimacs_path(const std::string& path) {
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot + 1);
  return ext == "col" || ext == "dimacs";
}

}  // namespace

Graph read_graph_file(const std::string& path) {
  std::ifstream in(path);
  support::require(in.good(), "read_graph_file: cannot open file");
  return is_dimacs_path(path) ? read_dimacs(in) : read_edge_list(in);
}

void write_graph_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  support::require(out.good(), "write_graph_file: cannot open file");
  if (is_dimacs_path(path)) {
    write_dimacs(g, out);
  } else {
    write_edge_list(g, out);
  }
}

}  // namespace ppsi::io
