#include "graph/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "support/types.hpp"

namespace ppsi::io {
namespace {

// Hard ceiling on a declared vertex count: far above any graph this library
// can process, far below anything that could drive a pathological
// allocation. Declared edge counts are additionally bounded by the simple-
// graph maximum n*(n-1)/2, and reserve() is clamped so a hostile header
// ("0 18446744073709551615") costs at most ~16 MiB before the first edge
// line fails validation.
constexpr std::size_t kMaxVertices = std::size_t{1} << 28;
constexpr std::size_t kReserveClamp = std::size_t{1} << 20;

/// Undirected edge as a set key; endpoints are already < n <= 2^28.
std::uint64_t edge_key(std::uint64_t u, std::uint64_t v) {
  return (std::min(u, v) << 32) | std::max(u, v);
}

Status check_counts(const char* who, std::size_t n, std::size_t m) {
  if (n > kMaxVertices)
    return Status::MalformedInput(std::string(who) +
                                  ": vertex count exceeds supported maximum");
  // n <= 2^28, so n*(n-1)/2 cannot overflow 64 bits.
  const std::size_t max_edges = n == 0 ? 0 : n * (n - 1) / 2;
  if (m > max_edges)
    return Status::MalformedInput(
        std::string(who) + ": edge count exceeds n*(n-1)/2 for a simple graph");
  return Status::Ok();
}

Status check_edge(const char* who, std::uint64_t u, std::uint64_t v,
                  std::size_t n, std::unordered_set<std::uint64_t>& seen) {
  if (u >= n || v >= n)
    return Status::MalformedInput(std::string(who) + ": vertex out of range");
  if (u == v)
    return Status::MalformedInput(std::string(who) + ": self-loop edge");
  if (!seen.insert(edge_key(u, v)).second)
    return Status::MalformedInput(std::string(who) + ": duplicate edge");
  return Status::Ok();
}

template <typename T>
Graph unwrap_or_throw(Result<T>&& result) {
  if (!result.ok()) throw std::invalid_argument(result.status().message());
  return std::move(result).value();
}

}  // namespace

Result<Graph> try_read_edge_list(std::istream& in) {
  std::size_t n = 0, m = 0;
  // An overflow-sized token sets failbit on extraction, so "1e99"-style
  // headers land here rather than in a huge reserve().
  if (!(in >> n >> m))
    return Status::MalformedInput("read_edge_list: missing header");
  if (Status s = check_counts("read_edge_list", n, m); !s.ok()) return s;
  EdgeList edges;
  edges.reserve(std::min(m, kReserveClamp));
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(std::min(m, kReserveClamp));
  for (std::size_t i = 0; i < m; ++i) {
    std::uint64_t u = 0, v = 0;
    if (!(in >> u >> v))
      return Status::MalformedInput("read_edge_list: truncated edge list");
    if (Status s = check_edge("read_edge_list", u, v, n, seen); !s.ok())
      return s;
    edges.emplace_back(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  return Graph::from_edges(static_cast<Vertex>(n), edges);
}

Graph read_edge_list(std::istream& in) {
  return unwrap_or_throw(try_read_edge_list(in));
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edge_list()) out << u << ' ' << v << '\n';
}

Result<Graph> try_read_dimacs(std::istream& in) {
  std::string line;
  std::size_t n = 0, m = 0;
  EdgeList edges;
  std::unordered_set<std::uint64_t> seen;
  bool has_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'c') continue;
    if (kind == 'p') {
      if (has_header)
        return Status::MalformedInput("read_dimacs: duplicate problem line");
      std::string fmt;
      if (!(ls >> fmt >> n >> m) || (fmt != "edge" && fmt != "col"))
        return Status::MalformedInput("read_dimacs: bad problem line");
      if (std::string extra; ls >> extra)
        return Status::MalformedInput(
            "read_dimacs: trailing tokens on problem line");
      if (Status s = check_counts("read_dimacs", n, m); !s.ok()) return s;
      has_header = true;
      edges.reserve(std::min(m, kReserveClamp));
      seen.reserve(std::min(m, kReserveClamp));
      continue;
    }
    if (kind == 'e') {
      if (!has_header)
        return Status::MalformedInput("read_dimacs: edge before problem line");
      std::uint64_t u = 0, v = 0;
      if (!(ls >> u >> v) || u < 1 || v < 1 || u > n || v > n)
        return Status::MalformedInput("read_dimacs: bad edge line");
      if (std::string extra; ls >> extra)
        return Status::MalformedInput(
            "read_dimacs: trailing tokens on edge line");
      if (edges.size() == m)
        return Status::MalformedInput(
            "read_dimacs: more edges than the problem line declares");
      if (Status s = check_edge("read_dimacs", u - 1, v - 1, n, seen); !s.ok())
        return s;
      edges.emplace_back(static_cast<Vertex>(u - 1),
                         static_cast<Vertex>(v - 1));
      continue;
    }
    return Status::MalformedInput("read_dimacs: unknown line kind");
  }
  if (!has_header) return Status::MalformedInput("read_dimacs: empty input");
  if (edges.size() != m)
    return Status::MalformedInput(
        "read_dimacs: edge count does not match problem line");
  return Graph::from_edges(static_cast<Vertex>(n), edges);
}

Graph read_dimacs(std::istream& in) {
  return unwrap_or_throw(try_read_dimacs(in));
}

void write_dimacs(const Graph& g, std::ostream& out) {
  out << "c written by ppsi\n";
  out << "p edge " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edge_list())
    out << "e " << (u + 1) << ' ' << (v + 1) << '\n';
}

namespace {

bool is_dimacs_path(const std::string& path) {
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot + 1);
  return ext == "col" || ext == "dimacs";
}

}  // namespace

Result<Graph> try_read_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good())
    return Status::MalformedInput("read_graph_file: cannot open file");
  return is_dimacs_path(path) ? try_read_dimacs(in) : try_read_edge_list(in);
}

Graph read_graph_file(const std::string& path) {
  return unwrap_or_throw(try_read_graph_file(path));
}

void write_graph_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  support::require(out.good(), "write_graph_file: cannot open file");
  if (is_dimacs_path(path)) {
    write_dimacs(g, out);
  } else {
    write_edge_list(g, out);
  }
}

}  // namespace ppsi::io
