#pragma once

// Compact CSR representation of an undirected graph.
//
// Adjacency is stored twice (once per direction); positions in the adjacency
// array double as half-edge identifiers for the planar embedding layer
// (see planar/rotation_system.hpp).

#include <cstdint>
#include <span>
#include <vector>

#include "support/types.hpp"

namespace ppsi {

/// Immutable undirected graph in CSR form.
///
/// Invariants: no self-loops, no parallel edges (unless built with
/// `keep_multi`), adjacency of each vertex sorted ascending unless the graph
/// was built with an explicit (rotation) order.
class Graph {
 public:
  Graph() = default;

  /// Builds from an edge list. Self-loops are dropped; parallel edges are
  /// deduplicated. Adjacency lists come out sorted.
  static Graph from_edges(Vertex n, const EdgeList& edges);

  /// Builds from explicit per-vertex neighbor lists *preserving their order*
  /// (used for rotation systems). The caller must supply each edge in both
  /// directions. Adjacency is NOT sorted; has_edge falls back to linear scan.
  static Graph from_adjacency(const std::vector<std::vector<Vertex>>& adj);

  Vertex num_vertices() const { return n_; }
  /// Number of undirected edges.
  std::size_t num_edges() const { return adj_.size() / 2; }
  /// Number of directed half-edges (= 2 * num_edges()).
  std::size_t num_half_edges() const { return adj_.size(); }

  std::uint32_t degree(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }
  std::span<const Vertex> neighbors(Vertex v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }
  /// First adjacency-array index of v's neighbor block (half-edge id base).
  std::uint32_t adjacency_offset(Vertex v) const { return offsets_[v]; }
  /// Target vertex of half-edge h (an adjacency-array index).
  Vertex half_edge_target(std::uint32_t h) const { return adj_[h]; }

  bool sorted_adjacency() const { return sorted_; }
  /// Edge test: O(log deg) when sorted, O(deg) otherwise.
  bool has_edge(Vertex u, Vertex v) const;

  /// All undirected edges, each reported once with u < v... (smaller first).
  EdgeList edge_list() const;

  /// Maximum degree.
  std::uint32_t max_degree() const;

 private:
  Vertex n_ = 0;
  bool sorted_ = true;
  std::vector<std::uint32_t> offsets_;  // size n_ + 1
  std::vector<Vertex> adj_;             // size 2m
};

}  // namespace ppsi
