#pragma once

// Edit scripts against immutable CSR graphs.
//
// The Graph class is deliberately immutable (CSR arrays double as half-edge
// ids), so mutation is expressed as data: an EditScript is an ordered batch
// of edits, validated and applied as one transaction to produce a *new*
// Graph plus the set of vertices the batch touched. The dynamic-target
// layer (api/dynamic.hpp) turns a committed script into a versioned
// copy-on-write snapshot; this header knows nothing about versions,
// embeddings, or caches.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"

namespace ppsi {

enum class EditKind : std::uint8_t {
  kInsertEdge,   ///< add undirected edge {u, v}; must not exist
  kRemoveEdge,   ///< remove undirected edge {u, v}; must exist
  kInsertVertex  ///< append one isolated vertex (id = current vertex count)
};

const char* to_string(EditKind kind);

struct Edit {
  EditKind kind = EditKind::kInsertEdge;
  Vertex u = 0;  ///< unused by kInsertVertex
  Vertex v = 0;  ///< unused by kInsertVertex
};

/// Ordered batch of edits, applied as one transaction. Each edit is
/// validated against the graph produced by its predecessors, so a script
/// may insert a vertex and immediately wire edges to it.
struct EditScript {
  std::vector<Edit> edits;

  EditScript& insert_edge(Vertex u, Vertex v) {
    edits.push_back({EditKind::kInsertEdge, u, v});
    return *this;
  }
  EditScript& remove_edge(Vertex u, Vertex v) {
    edits.push_back({EditKind::kRemoveEdge, u, v});
    return *this;
  }
  EditScript& insert_vertex() {
    edits.push_back({EditKind::kInsertVertex, 0, 0});
    return *this;
  }

  bool empty() const { return edits.empty(); }
  std::size_t size() const { return edits.size(); }
};

/// Result of applying an EditScript to a plain graph.
struct GraphDelta {
  Graph graph;  ///< the edited graph (sorted CSR)
  /// Endpoints of every inserted/removed edge plus every inserted vertex,
  /// sorted ascending, deduplicated — the locality footprint delta
  /// invalidation reasons about.
  std::vector<Vertex> touched;
  std::size_t edges_inserted = 0;
  std::size_t edges_removed = 0;
  std::size_t vertices_inserted = 0;
};

/// Validates and applies `script` to `base`. Returns the empty string and
/// fills `*out` on success; on the first invalid edit (endpoint out of
/// range, self-loop, inserting a present edge, removing an absent one)
/// returns a diagnostic naming the edit's index and leaves `*out` untouched.
std::string apply_edits(const Graph& base, const EditScript& script,
                        GraphDelta* out);

}  // namespace ppsi
