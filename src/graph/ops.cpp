#include "graph/ops.hpp"

#include <algorithm>
#include <queue>

#include "support/parallel.hpp"

namespace ppsi {

DerivedGraph induced_subgraph(const Graph& g,
                              const std::vector<Vertex>& vertices) {
  DerivedGraph out;
  out.origin_of = vertices;
  std::vector<Vertex> local(g.num_vertices(), kNoVertex);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    support::require(vertices[i] < g.num_vertices(),
                     "induced_subgraph: vertex out of range");
    support::require(local[vertices[i]] == kNoVertex,
                     "induced_subgraph: duplicate vertex");
    local[vertices[i]] = static_cast<Vertex>(i);
  }
  EdgeList edges;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const Vertex u = vertices[i];
    for (Vertex w : g.neighbors(u)) {
      const Vertex j = local[w];
      if (j != kNoVertex && j > i) edges.emplace_back(static_cast<Vertex>(i), j);
    }
  }
  out.graph = Graph::from_edges(static_cast<Vertex>(vertices.size()), edges);
  return out;
}

DerivedGraph quotient_graph(const Graph& g, const std::vector<Vertex>& label,
                            Vertex num_groups) {
  support::require(label.size() == g.num_vertices(),
                   "quotient_graph: label size mismatch");
  DerivedGraph out;
  out.origin_of.assign(num_groups, kNoVertex);
  EdgeList edges;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const Vertex lu = label[u];
    if (lu == kNoVertex) continue;
    support::require(lu < num_groups, "quotient_graph: label out of range");
    if (out.origin_of[lu] == kNoVertex) out.origin_of[lu] = u;
    for (Vertex w : g.neighbors(u)) {
      const Vertex lw = label[w];
      if (lw == kNoVertex || lw == lu) continue;
      if (lu < lw) edges.emplace_back(lu, lw);
    }
  }
  out.graph = Graph::from_edges(num_groups, edges);
  return out;
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kNoDistance);
  std::queue<Vertex> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop();
    for (Vertex w : g.neighbors(u)) {
      if (dist[w] == kNoDistance) {
        dist[w] = dist[u] + 1;
        queue.push(w);
      }
    }
  }
  return dist;
}

std::uint32_t eccentricity(const Graph& g, Vertex source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist)
    if (d != kNoDistance) ecc = std::max(ecc, d);
  return ecc;
}

std::uint32_t diameter(const Graph& g) {
  std::uint32_t best = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    best = std::max(best, eccentricity(g, v));
  return best;
}

}  // namespace ppsi
