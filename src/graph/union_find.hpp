#pragma once

// Union-find with path halving and union by size.

#include <cstdint>
#include <numeric>
#include <vector>

#include "support/types.hpp"

namespace ppsi {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), Vertex{0});
  }

  Vertex find(Vertex x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Returns true when the two elements were in different sets.
  bool unite(Vertex a, Vertex b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  bool connected(Vertex a, Vertex b) { return find(a) == find(b); }
  std::uint32_t component_size(Vertex x) { return size_[find(x)]; }

 private:
  std::vector<Vertex> parent_;
  std::vector<std::uint32_t> size_;
};

}  // namespace ppsi
