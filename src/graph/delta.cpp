#include "graph/delta.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace ppsi {

const char* to_string(EditKind kind) {
  switch (kind) {
    case EditKind::kInsertEdge: return "insert_edge";
    case EditKind::kRemoveEdge: return "remove_edge";
    case EditKind::kInsertVertex: return "insert_vertex";
  }
  return "unknown";
}

namespace {

std::string describe(std::size_t index, const Edit& edit,
                     const char* problem) {
  std::string out = "edit ";
  out += std::to_string(index);
  out += " (";
  out += to_string(edit.kind);
  if (edit.kind != EditKind::kInsertVertex) {
    out += ' ';
    out += std::to_string(edit.u);
    out += '-';
    out += std::to_string(edit.v);
  }
  out += "): ";
  out += problem;
  return out;
}

}  // namespace

std::string apply_edits(const Graph& base, const EditScript& script,
                        GraphDelta* out) {
  // Mutable working copy: per-vertex neighbor sets give O(log deg) edge
  // tests while the script replays. Scripts are short relative to covers,
  // so this transient representation is never the bottleneck.
  Vertex n = base.num_vertices();
  std::vector<std::set<Vertex>> adj(n);
  for (Vertex v = 0; v < n; ++v) {
    const auto neighbors = base.neighbors(v);
    adj[v].insert(neighbors.begin(), neighbors.end());
  }

  GraphDelta delta;
  std::set<Vertex> touched;
  for (std::size_t i = 0; i < script.edits.size(); ++i) {
    const Edit& edit = script.edits[i];
    switch (edit.kind) {
      case EditKind::kInsertVertex:
        adj.emplace_back();
        touched.insert(n);
        ++n;
        ++delta.vertices_inserted;
        break;
      case EditKind::kInsertEdge: {
        if (edit.u >= n || edit.v >= n)
          return describe(i, edit, "endpoint out of range");
        if (edit.u == edit.v) return describe(i, edit, "self-loop");
        if (adj[edit.u].count(edit.v) != 0)
          return describe(i, edit, "edge already present");
        adj[edit.u].insert(edit.v);
        adj[edit.v].insert(edit.u);
        touched.insert(edit.u);
        touched.insert(edit.v);
        ++delta.edges_inserted;
        break;
      }
      case EditKind::kRemoveEdge: {
        if (edit.u >= n || edit.v >= n)
          return describe(i, edit, "endpoint out of range");
        if (adj[edit.u].count(edit.v) == 0)
          return describe(i, edit, "edge not present");
        adj[edit.u].erase(edit.v);
        adj[edit.v].erase(edit.u);
        touched.insert(edit.u);
        touched.insert(edit.v);
        ++delta.edges_removed;
        break;
      }
    }
  }

  EdgeList edges;
  for (Vertex u = 0; u < n; ++u) {
    for (const Vertex v : adj[u]) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  delta.graph = Graph::from_edges(n, edges);
  delta.touched.assign(touched.begin(), touched.end());
  *out = std::move(delta);
  return {};
}

}  // namespace ppsi
