#pragma once

// Structural graph operations: induced subgraphs and quotients (minors).

#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"

namespace ppsi {

/// A materialized subgraph or minor together with the vertex correspondence.
struct DerivedGraph {
  Graph graph;
  /// For subgraphs: original vertex of each new vertex.
  /// For quotients: one representative original vertex per group.
  std::vector<Vertex> origin_of;
};

/// Subgraph induced by `vertices` (must be distinct). Vertex i of the result
/// corresponds to vertices[i].
DerivedGraph induced_subgraph(const Graph& g, const std::vector<Vertex>& vertices);

/// Quotient graph: vertices with the same non-negative label are merged;
/// label kNoVertex drops the vertex. Self-loops and parallel edges of the
/// quotient are removed. `num_groups` is one past the largest used label.
DerivedGraph quotient_graph(const Graph& g, const std::vector<Vertex>& label,
                            Vertex num_groups);

/// BFS distances from `source` (kNoDistance where unreachable). Sequential
/// reference used by tests; the parallel version lives in cluster/.
inline constexpr std::uint32_t kNoDistance = 0xffffffffu;
std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source);

/// Eccentricity of `source` within its component (max BFS distance).
std::uint32_t eccentricity(const Graph& g, Vertex source);

/// Exact diameter of the (connected) graph via all-source BFS; O(nm), tests
/// and benches only.
std::uint32_t diameter(const Graph& g);

}  // namespace ppsi
