#pragma once

// Connected components: sequential reference and round-synchronous parallel
// label propagation (the "connected components and contraction" primitive of
// paper §5.2, Lemma 5.3 cites O(n) work, O(log n) depth algorithms).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "support/metrics.hpp"
#include "support/types.hpp"

namespace ppsi {

struct Components {
  std::vector<Vertex> label;  // component id per vertex, in [0, count)
  Vertex count = 0;
};

/// Sequential BFS-based components (reference).
Components connected_components(const Graph& g);

/// Parallel pointer-doubling components (hash-to-min style): each round every
/// vertex adopts the minimum label in its closed neighborhood, then labels
/// are short-cut. Converges in O(log n) rounds on any graph; rounds are
/// recorded in `metrics`.
Components connected_components_parallel(const Graph& g,
                                         support::Metrics* metrics = nullptr);

}  // namespace ppsi
