#pragma once

// Graph generators.
//
// Abstract generators return plain Graphs (patterns, trees, G(n,p)).
// Planar generators return EmbeddedGraphs whose rotation systems are
// maintained combinatorially during construction — they are the embedding
// substrate the paper assumes (it cites Klein–Reif for computing one).
//
// Vertex-connectivity test families (connectivity value in parentheses):
//   path (1), cycle/grid (2), wheel/apollonian/tetrahedron+subdivision (3),
//   octahedron+subdivisions/antiprism/bipyramid (4),
//   icosahedron+subdivisions (5).

#include <cstdint>

#include "graph/graph.hpp"
#include "planar/rotation_system.hpp"
#include "support/types.hpp"

namespace ppsi::gen {

// ---- Abstract graphs ----

Graph path_graph(Vertex n);
Graph cycle_graph(Vertex n);
/// Star with one hub (vertex 0) and n-1 leaves.
Graph star_graph(Vertex n);
Graph complete_graph(Vertex n);
Graph complete_bipartite(Vertex a, Vertex b);
Graph grid_graph(Vertex rows, Vertex cols);
/// Uniform random tree from a random parent assignment.
Graph random_tree(Vertex n, std::uint64_t seed);
/// Erdős–Rényi G(n, p); typically non-planar for p >> 6/n.
Graph gnp(Vertex n, double p, std::uint64_t seed);
/// Disjoint union; vertex ids of part i are shifted by the sizes before it.
Graph disjoint_union(const std::vector<Graph>& parts);

// ---- Embedded planar graphs ----

planar::EmbeddedGraph embedded_cycle(Vertex n);
planar::EmbeddedGraph embedded_grid(Vertex rows, Vertex cols);
/// Hub k + rim 0..k-1.
planar::EmbeddedGraph wheel(Vertex k);
planar::EmbeddedGraph tetrahedron();
planar::EmbeddedGraph octahedron();
planar::EmbeddedGraph icosahedron();
/// Antiprism on 2k vertices (k >= 3); 4-connected for k >= 4, octahedron at 3.
planar::EmbeddedGraph antiprism(Vertex k);
/// Bipyramid over a k-gon (k >= 3); 4-connected for k >= 4.
planar::EmbeddedGraph bipyramid(Vertex k);
/// Random Apollonian network (stacked triangulation) on n >= 3 vertices;
/// maximal planar, vertex connectivity 3 for n >= 4... n >= 5 (K4 at n=4).
planar::EmbeddedGraph apollonian(Vertex n, std::uint64_t seed);
/// One round of Loop subdivision of an embedded triangulation of the sphere:
/// every edge gains a midpoint, every face splits into four. Preserves
/// minimum connectivity of the solid families (subdivided octahedron stays
/// 4-connected, subdivided icosahedron stays 5-connected).
planar::EmbeddedGraph loop_subdivide(const planar::EmbeddedGraph& eg);
/// `rounds` rounds of Loop subdivision.
planar::EmbeddedGraph loop_subdivide(planar::EmbeddedGraph eg, int rounds);
/// Deletes up to `count` random edges while keeping the graph connected
/// (bridges are skipped). The embedding is maintained.
planar::EmbeddedGraph delete_random_edges(const planar::EmbeddedGraph& eg,
                                          std::size_t count,
                                          std::uint64_t seed);

}  // namespace ppsi::gen
