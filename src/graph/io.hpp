#pragma once

// Graph serialization: a simple edge-list text format and DIMACS, so users
// can run the pipeline on their own (planar) graphs.
//
// Edge-list format: first line "n m", then m lines "u v" (0-based).
// DIMACS format:    "c ..." comments, "p edge n m", then "e u v" (1-based).

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace ppsi::io {

/// Reads "n m" followed by m "u v" lines. Throws std::invalid_argument on
/// malformed input.
Graph read_edge_list(std::istream& in);
void write_edge_list(const Graph& g, std::ostream& out);

/// Reads a DIMACS "p edge" file (1-based vertex ids).
Graph read_dimacs(std::istream& in);
void write_dimacs(const Graph& g, std::ostream& out);

/// Convenience file wrappers (format picked by extension: .col/.dimacs ->
/// DIMACS, anything else -> edge list).
Graph read_graph_file(const std::string& path);
void write_graph_file(const Graph& g, const std::string& path);

}  // namespace ppsi::io
