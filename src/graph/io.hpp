#pragma once

// Graph serialization: a simple edge-list text format and DIMACS, so users
// can run the pipeline on their own (planar) graphs.
//
// Edge-list format: first line "n m", then m lines "u v" (0-based).
// DIMACS format:    "c ..." comments, "p edge n m", then "e u v" (1-based).
//
// The try_* readers are the hardened surface: hostile or malformed input
// (truncated lines, garbage tokens, overflow-sized counts, out-of-range
// endpoints, self-loops, duplicate edges, trailing junk) rejects with
// StatusCode::kMalformedInput — never an assert, throw, or UB — and a
// declared edge count is only trusted after validation, so "m =
// 10^18" cannot drive an allocation. The legacy throwing readers wrap them
// (std::invalid_argument carrying the same message) for existing callers.

#include <iosfwd>
#include <string>

#include "api/status.hpp"
#include "graph/graph.hpp"

namespace ppsi::io {

/// Reads "n m" followed by m "u v" lines; kMalformedInput on bad input.
Result<Graph> try_read_edge_list(std::istream& in);
/// Reads a DIMACS "p edge" file (1-based ids); kMalformedInput on bad input.
Result<Graph> try_read_dimacs(std::istream& in);
/// File wrapper (format picked by extension: .col/.dimacs -> DIMACS,
/// anything else -> edge list); kMalformedInput on an unopenable file too.
Result<Graph> try_read_graph_file(const std::string& path);

/// Throwing convenience twins (std::invalid_argument with the try_*
/// status message).
Graph read_edge_list(std::istream& in);
Graph read_dimacs(std::istream& in);
Graph read_graph_file(const std::string& path);

void write_edge_list(const Graph& g, std::ostream& out);
void write_dimacs(const Graph& g, std::ostream& out);
void write_graph_file(const Graph& g, const std::string& path);

}  // namespace ppsi::io
