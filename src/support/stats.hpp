#pragma once

// Sample statistics over repeated measurements.
//
// The bench harness reports every timed quantity as a summary of repeated
// trials; regressions are gated on the median (robust against scheduler
// noise in a way the mean is not), with min/stddev carried along so a noisy
// run is distinguishable from a slow one.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace ppsi::support {

struct SampleStats {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double median = 0;
  double stddev = 0;  // sample stddev (n-1 denominator); 0 for n < 2
};

/// Summary statistics of `samples` (taken by value: summarizing sorts).
inline SampleStats summarize(std::vector<double> samples) {
  SampleStats s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  const std::size_t mid = samples.size() / 2;
  s.median = samples.size() % 2 == 1
                 ? samples[mid]
                 : 0.5 * (samples[mid - 1] + samples[mid]);
  if (samples.size() > 1) {
    double ss = 0;
    for (const double v : samples) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(samples.size() - 1));
  }
  return s;
}

}  // namespace ppsi::support
