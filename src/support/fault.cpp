#include "support/fault.hpp"

#include <chrono>
#include <cstring>
#include <new>
#include <thread>

#include "support/rng.hpp"

namespace ppsi::support {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const FaultPlan& plan) {
  const std::lock_guard<std::mutex> lock(mutex_);
  plan_ = plan;
  counter_ = 0;
}

void FaultInjector::disarm() {
  const std::lock_guard<std::mutex> lock(mutex_);
  plan_ = FaultPlan{};
}

bool FaultInjector::armed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return plan_.rate != 0;
}

FaultStats FaultInjector::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void FaultInjector::reset_stats() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_ = FaultStats{};
}

void FaultInjector::visit(const char* point) {
  // Decide (and count) under the mutex; act after releasing it so a delay
  // never serializes unrelated visits and a throw never unwinds a held lock.
  enum class Action { kNone, kThrow, kBadAlloc, kDelay };
  Action action = Action::kNone;
  std::uint64_t salt = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.visits;
    if (plan_.rate == 0) return;
    if (!plan_.point_filter.empty() &&
        std::strstr(point, plan_.point_filter.c_str()) == nullptr)
      return;
    const std::uint64_t h = hash_combine(plan_.seed, ++counter_);
    if (h % plan_.rate != 0) return;
    salt = h / plan_.rate;
    FaultKind kind = plan_.kind;
    if (kind == FaultKind::kMixed) {
      switch (salt % 3) {
        case 0: kind = FaultKind::kThrow; break;
        case 1: kind = FaultKind::kBadAlloc; break;
        default: kind = FaultKind::kDelay; break;
      }
    }
    switch (kind) {
      case FaultKind::kThrow:
        ++stats_.thrown;
        action = Action::kThrow;
        break;
      case FaultKind::kBadAlloc:
        ++stats_.alloc_failures;
        action = Action::kBadAlloc;
        break;
      case FaultKind::kDelay:
        ++stats_.delays;
        action = Action::kDelay;
        break;
      case FaultKind::kMixed:
        break;  // unreachable: resolved above
    }
  }
  switch (action) {
    case Action::kThrow:
      throw InjectedFault(point);
    case Action::kBadAlloc:
      throw std::bad_alloc();
    case Action::kDelay:
      std::this_thread::sleep_for(
          std::chrono::microseconds(50 + salt % 200));
      break;
    case Action::kNone:
      break;
  }
}

}  // namespace ppsi::support
