#pragma once

// Scratch-arena accounting for per-thread reusable working storage.
//
// The DP engine keeps one scratch holder per thread (isomorphism/
// dp_scratch.hpp) whose buffers are *acquired* (cleared, capacity kept)
// at each use instead of being reallocated. A ScratchArena instruments
// that reuse: every capacity growth of a tracked buffer is one
// *allocation event*, and the sum of tracked capacities is the arena
// footprint, whose high-water mark is the *peak*. After warmup (the
// first queries of each shape) the buffers stop growing and the
// allocation-event counter goes flat — which is exactly the property the
// Solver tests and the bench JSON (`allocs`, `scratch_peak`) expose.
//
// The arena does not own the buffers; owners route growth through
// acquire()/settle() so the counters stay truthful:
//   * acquire(v, n)       — clear v and reserve >= n (growth counted),
//   * acquire_fill(v,n,x) — acquire then fill with n copies of x,
//   * settle(before,after)— record organic growth of a buffer that was
//                           filled via push_back (capacity bytes before
//                           and after the fill).
// Output storage (solution tables sized exactly and written once) is
// deliberately untracked: the counters measure steady-state *scratch*
// churn, not the result itself.
//
// Footprint and peak are thread-lifetime values: buffers are never freed,
// so a solve's reported peak is the residency of the arena it ran on,
// which may have been sized by an earlier, larger query on that thread.
// Allocation *events* are the per-use signal — solves report them as a
// delta around the use (zero in steady state).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/fault.hpp"
#include "support/numa.hpp"

namespace ppsi::support {

namespace detail {
/// Process-wide sum of all arenas' tracked capacities, in bytes. Grows
/// monotonically (arena buffers never shrink); feeds the per-query
/// memory budget (QueryOptions::max_memory_bytes) and the pool's
/// admission high-watermark (PoolOptions::memory_high_watermark_bytes).
inline std::atomic<std::uint64_t> g_scratch_residency{0};
}  // namespace detail

/// Current process-wide tracked scratch residency, in bytes.
inline std::uint64_t scratch_residency_bytes() {
  return detail::g_scratch_residency.load(std::memory_order_relaxed);
}

class ScratchArena {
 public:
  template <class T>
  void acquire(std::vector<T>& v, std::size_t n) {
    v.clear();
    if (v.capacity() < n) {
      PPSI_FAULT_POINT("arena.grow");
      const std::size_t before = v.capacity() * sizeof(T);
      v.reserve(n);
      settle(before, v.capacity() * sizeof(T));
    }
  }

  template <class T>
  void acquire_fill(std::vector<T>& v, std::size_t n, const T& fill) {
    acquire(v, n);
    v.assign(n, fill);
  }

  /// Current heap bytes of `v` (for settle() bookkeeping around a
  /// push_back-filled use).
  template <class T>
  static std::size_t bytes_of(const std::vector<T>& v) {
    return v.capacity() * sizeof(T);
  }

  /// Records a tracked buffer growing from `before` to `after` capacity
  /// bytes (no-op when it did not grow; buffers never shrink).
  void settle(std::size_t before, std::size_t after) {
    if (after <= before) return;
    if (numa_node_ == kNumaUnrecorded) numa_node_ = numa::current_node();
    ++alloc_events_;
    footprint_ += after - before;
    if (footprint_ > peak_bytes_) peak_bytes_ = footprint_;
    detail::g_scratch_residency.fetch_add(after - before,
                                          std::memory_order_relaxed);
  }

  /// Number of times a tracked buffer had to (re)allocate.
  std::uint64_t alloc_events() const { return alloc_events_; }
  /// Current sum of tracked buffer capacities, in bytes.
  std::uint64_t footprint_bytes() const { return footprint_; }
  /// High-water mark of footprint_bytes().
  std::uint64_t peak_bytes() const { return peak_bytes_; }
  /// NUMA node the arena's buffers first grew on, or -1 when the arena
  /// never grew (or the platform cannot tell). Scratch holders are
  /// thread_local and pages land by first touch, so the node observed at
  /// the first growth is where the arena's memory lives — and stays, when
  /// workers are pinned (PPSI_NUMA=ON / OMP_PROC_BIND).
  int numa_node() const {
    return numa_node_ == kNumaUnrecorded ? -1 : numa_node_;
  }

 private:
  static constexpr int kNumaUnrecorded = -2;

  std::uint64_t alloc_events_ = 0;
  std::uint64_t footprint_ = 0;
  std::uint64_t peak_bytes_ = 0;
  int numa_node_ = kNumaUnrecorded;
};

}  // namespace ppsi::support
