#pragma once

// NUMA topology queries and optional explicit thread binding.
//
// The DP scratch arenas (isomorphism/dp_scratch.hpp) are thread_local and
// grow on the thread that uses them, so their pages land on the owning
// worker's NUMA node by first-touch. That placement is only *stable* when
// the workers themselves stay put, so this module adds an opt-in binding
// mode: with PPSI_NUMA=ON (or 1), the serving pool's worker threads pin
// themselves round-robin across the nodes reported by sysfs
// (sched_setaffinity over the node's cpulist; libnuma, when the build
// found it, additionally sets the preferred allocation node). OMP teams
// are pinned the usual way — OMP_PROC_BIND=close OMP_PLACES=cores, which
// scripts/bench_smoke.sh now exports by default.
//
// Everything degrades gracefully: on single-node hosts binding is a no-op,
// on non-Linux platforms the queries return "unknown" (-1) / 1 node, and
// nothing here is on a hot path (topology is cached after the first call;
// current_node() is one getcpu syscall and is only used to *record*
// placement, once per arena growth).

namespace ppsi::support::numa {

/// True when PPSI_NUMA is set to ON/on/1 (cached at first call).
bool enabled();

/// Number of online NUMA nodes (>= 1; 1 on non-Linux or unknown).
int num_nodes();

/// NUMA node of the CPU this thread is running on, or -1 when unknown.
int current_node();

/// Pins the calling thread to the CPUs of `node` (and, with libnuma,
/// prefers allocations from it). Returns the node on success, -1 on
/// failure or when the platform cannot bind. No-op unless 0 <= node <
/// num_nodes().
int bind_current_thread(int node);

/// Round-robin node assignment for serving-pool worker `index`
/// (index % num_nodes(); 0 on single-node hosts).
int preferred_node_for_worker(unsigned long index);

}  // namespace ppsi::support::numa
