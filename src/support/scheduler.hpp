#pragma once

// Dependency-driven task scheduler on OpenMP tasks.
//
// The engines' parallelism used to be fork-join `parallel_for` with a full
// barrier after every layer of every slice. A TaskGraph instead names each
// unit of work once, wires explicit predecessor edges, and Scheduler::run
// executes the graph with atomic ready-counters: every task holds the
// number of unfinished predecessors, the last predecessor to finish spawns
// it, and nothing waits at a layer boundary. One OMP thread team executes
// every level of nesting — a graph started from inside a running task
// (slice tasks spawning path tasks) shares the enclosing team instead of
// opening a nested region.
//
// Determinism contract: the scheduler never decides *what* is computed,
// only *when*. Tasks must write disjoint state (or accumulate through
// commutative atomics, e.g. support::Metrics sums), and any order-sensitive
// reduction is replayed by the caller in canonical index order after run()
// returns. Under that discipline results are bit-identical for every
// thread count and schedule (pinned by tests/differential/
// test_differential_threads.cpp).
//
// Memory-model notes (the CI TSan job runs against an uninstrumented
// libgomp whose barriers/task queues it cannot see, so every edge the
// correctness argument needs is mirrored with C++ atomics):
//   * fork: run() release-publishes the graph before spawning; every task
//     acquire-loads that flag first,
//   * dependency: predecessor completion decrements the successor's ready
//     counter with acq_rel; the successor acquire-loads its own counter on
//     entry, synchronizing with the whole release sequence of decrements,
//   * join: every task release-increments a finished counter; run()
//     acquire-spins on it after the taskgroup (the spin is momentary — the
//     taskgroup already joined — it only makes the edge TSan-visible),
//   * handoff: spawned OMP tasks capture nothing (libgomp's firstprivate
//     copy lives in uninstrumented runtime memory); the (run, task) pair
//     travels through a pthread-mutex-guarded LIFO stack instead
//     (scheduler.cpp), and the region fork/join is mirrored by global
//     epoch counters incremented inside the region.
//
// Locking discipline: a thread suspended at a nested run()'s taskgroup may
// pick up ANY queued task of the team — libgomp observably runs sibling
// tasks there, not just descendants — so a task that holds a lock while
// calling run() (or anything that spawns tasks) can find an arbitrary
// other task on its own stack trying to take the same lock: deadlock.
// NEVER hold a mutex across a TaskGraph run. Parallel work under a lock
// belongs in support::parallel_for, whose nested regions cannot steal
// tasks (the cover cache's decompose fan-out does exactly this).
//
// Cooperative cancellation rides along as a CancelWatermark: "first
// accepting index wins" queries lower the watermark when an index accepts,
// and queued work keyed by a strictly greater index skips itself. The
// watermark is monotone decreasing, so anything at or below the final
// watermark is guaranteed to have run to completion — which is what makes
// cancelled runs replayable deterministically (see api/solver.cpp). A
// CancelScope additionally carries the query-wide CancelToken and
// DeadlineClock (support/cancel.hpp), so one checkpoint covers all three
// cancellation sources.

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "support/cancel.hpp"

namespace ppsi::support {

namespace detail {
class GraphRun;  // scheduler.cpp: one run()'s execution state
}

/// Monotone-decreasing index watermark for first-accepting-index queries.
/// Thread-safe; starts at kNone (nothing accepted, nothing obsolete).
class CancelWatermark {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Records that `index` accepted; the watermark becomes the minimum
  /// accepting index seen so far.
  void accept(std::uint32_t index) {
    std::uint32_t current = mark_.load(std::memory_order_relaxed);
    while (index < current &&
           !mark_.compare_exchange_weak(current, index,
                                        std::memory_order_acq_rel)) {
    }
  }

  /// True when work keyed by `index` is no longer needed: some strictly
  /// smaller index already accepted. Work at or below the watermark is
  /// never obsolete, so every index up to the final watermark completes.
  bool obsolete(std::uint32_t index) const {
    return index > mark_.load(std::memory_order_acquire);
  }

  /// Smallest accepting index so far (kNone if none).
  std::uint32_t watermark() const {
    return mark_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint32_t> mark_{kNone};
};

/// One submission's view of every cancellation source: the subject's own
/// index against the shared watermark, plus the query-wide CancelToken and
/// DeadlineClock when the query has them. Default-constructed scopes never
/// cancel (solo queries). All three sources are monotone, so a scope that
/// reported cancelled() stays cancelled.
struct CancelScope {
  const CancelWatermark* watermark = nullptr;
  std::uint32_t index = 0;
  const CancelToken* token = nullptr;
  const DeadlineClock* deadline = nullptr;

  bool cancelled() const {
    if (watermark != nullptr && watermark->obsolete(index)) return true;
    if (token != nullptr && token->cancelled()) return true;
    return deadline != nullptr && deadline->expired();
  }
};

/// A static dependency graph of tasks. Build single-threaded (add/add_edge),
/// run once via Scheduler::run. Task ids are dense and assigned in add()
/// order, so callers can keep per-task output slots in a plain vector.
class TaskGraph {
 public:
  using Fn = std::function<void()>;

  /// Adds a task; returns its id (== number of prior add() calls).
  std::uint32_t add(Fn fn);

  /// Declares that `succ` may only start after `pred` finished.
  /// Both ids must already exist; the graph must stay acyclic.
  void add_edge(std::uint32_t pred, std::uint32_t succ);

  std::size_t size() const { return nodes_.size(); }

 private:
  friend class Scheduler;
  friend class detail::GraphRun;

  struct Node {
    Fn fn;
    std::atomic<std::uint32_t> pending{0};  ///< unfinished predecessors
    std::vector<std::uint32_t> successors;

    Node() = default;
    explicit Node(Fn f) : fn(std::move(f)) {}
    // Build-time only (the vector may grow while single-threaded).
    Node(Node&& other) noexcept
        : fn(std::move(other.fn)),
          pending(other.pending.load(std::memory_order_relaxed)),
          successors(std::move(other.successors)) {}
  };

  std::vector<Node> nodes_;
};

/// Executes TaskGraphs on the process-wide OMP thread pool.
class Scheduler {
 public:
  /// Runs `graph` to completion. Callable from outside any parallel region
  /// (opens one) or from inside a running task (spawns into the enclosing
  /// team; the caller participates in executing descendants while waiting).
  /// A graph is single-use: run it once.
  static void run(TaskGraph& graph);

  /// Detached submission for the serving layer: enqueues `job` on a small
  /// process-wide pool of serving threads and returns immediately. Jobs
  /// drain highest `priority` first, FIFO within a priority level (the
  /// default 0 keeps plain submissions strictly FIFO; SolverPool maps its
  /// admission classes onto this so an interactive dispatch overtakes
  /// already-enqueued bulk ones). Up to serving_threads() jobs run
  /// concurrently; a job is free to open OMP parallel regions of its own
  /// — i.e. to call Scheduler::run — each serving thread owns an
  /// independent team. Completion is the caller's to observe (e.g. through
  /// a PendingResult); the pool drains and joins at process exit.
  static void submit(std::function<void()> job, int priority = 0);

  /// Convenience: runs `graph` detached, then `on_complete` (if any).
  /// The graph is owned by the submission; both run on a serving thread.
  static void submit(TaskGraph graph, std::function<void()> on_complete);

  /// Number of serving threads backing submit().
  static std::size_t serving_threads();
};

}  // namespace ppsi::support
