#pragma once

// Open-addressing flat hash map with 32-bit mapped values.
//
// The DP engine keeps one table per solved decomposition node mapping a
// packed partial-match key to its index in the node's state array. The
// tables sit on the hottest lookup path of the engine, so the layout is a
// single contiguous bucket array (key + value side by side), probed
// linearly from a power-of-two hash slot:
//   * no per-node heap graph (std::unordered_map allocates one node per
//     entry and chases a pointer per probe),
//   * `reserve(n)` performs the single exact allocation for n entries
//     (callers that know the final size never rehash),
//   * emplace-only mutation: values are never overwritten, which is all
//     the engine needs and keeps the probe loop branch-light.
//
// The mapped value doubles as the bucket-empty sentinel, so kFlatNotFound
// (0xffffffff) is not a storable value — state indices are bounded far
// below it. Growth (when a caller inserts past the load cap without an
// exact reserve) doubles the bucket array; iteration order is unspecified
// and never observed by the engine (see for_each's doc note).

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/types.hpp"

namespace ppsi::support {

/// Returned by FlatMap::find for absent keys; not a storable value.
inline constexpr std::uint32_t kFlatNotFound = 0xffffffffu;

template <class Key, class Hasher>
class FlatMap {
 public:
  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t bucket_count() const { return buckets_.size(); }
  /// Heap footprint (for scratch accounting).
  std::size_t capacity_bytes() const {
    return buckets_.capacity() * sizeof(Bucket);
  }

  /// Single exact allocation for n entries; keeps existing entries. A
  /// caller that reserves its final size up front never rehashes.
  void reserve(std::size_t n) {
    const std::size_t want = bucket_target(n);
    if (want > buckets_.size()) rehash(want);
  }

  /// Removes every entry; keeps the bucket storage for reuse. The reset is
  /// a linear sweep of the bucket array — a contiguous, memset-speed pass
  /// (the unordered_map this replaced also zeroed its bucket array on
  /// clear). Per-bucket generation counters would make it O(1) but cost an
  /// extra compare in the hot find/emplace probes, a bad trade here.
  void clear() {
    for (Bucket& b : buckets_) b.value = kFlatNotFound;
    size_ = 0;
  }

  /// Index of `key`, or kFlatNotFound.
  std::uint32_t find(const Key& key) const {
    return find_hashed(key, Hasher{}(key));
  }

  /// find() with the hash supplied by the caller — the batched probe layer
  /// (isomorphism/group_probe.hpp) hashes whole key groups with the SIMD
  /// kernels, prefetches every home bucket, then probes. `hash` must equal
  /// Hasher{}(key); the probe sequence (and thus the result) is identical
  /// to find().
  std::uint32_t find_hashed(const Key& key, std::size_t hash) const {
    if (buckets_.empty()) return kFlatNotFound;
    const std::size_t mask = buckets_.size() - 1;
    std::size_t i = hash & mask;
    while (true) {
      const Bucket& b = buckets_[i];
      if (b.value == kFlatNotFound) return kFlatNotFound;
      if (b.key == key) return b.value;
      i = (i + 1) & mask;
    }
  }

  /// Prefetches the home bucket of a key hashing to `hash` so a subsequent
  /// find_hashed hits cache. No-op on an empty table or a toolchain
  /// without __builtin_prefetch.
  void prefetch_hashed(std::size_t hash) const {
    if (buckets_.empty()) return;
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&buckets_[hash & (buckets_.size() - 1)], 0, 1);
#endif
  }

  bool contains(const Key& key) const { return find(key) != kFlatNotFound; }

  /// Inserts (key, value) unless key is present; returns true when
  /// inserted. `value` must not be kFlatNotFound.
  bool emplace(const Key& key, std::uint32_t value) {
    if (size_ + 1 > (buckets_.size() / 8) * 7)
      rehash(bucket_target(size_ + 1));
    const std::size_t mask = buckets_.size() - 1;
    std::size_t i = Hasher{}(key) & mask;
    while (true) {
      Bucket& b = buckets_[i];
      if (b.value == kFlatNotFound) {
        b.key = key;
        b.value = value;
        ++size_;
        return true;
      }
      if (b.key == key) return false;
      i = (i + 1) & mask;
    }
  }

  /// Visits every (key, value) pair in unspecified (layout) order. Callers
  /// must not depend on the order; the engine only iterates to rebuild
  /// order-insensitive structures (tested under shuffled insertions).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const Bucket& b : buckets_)
      if (b.value != kFlatNotFound) fn(b.key, b.value);
  }

 private:
  struct Bucket {
    Key key{};
    std::uint32_t value = kFlatNotFound;
  };

  /// Smallest power-of-two bucket count holding n entries at load <= 7/8.
  static std::size_t bucket_target(std::size_t n) {
    std::size_t want = 8;
    while ((want / 8) * 7 < n) want <<= 1;
    return want;
  }

  void rehash(std::size_t new_buckets) {
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(new_buckets, Bucket{});
    size_ = 0;
    for (const Bucket& b : old)
      if (b.value != kFlatNotFound) emplace(b.key, b.value);
  }

  std::vector<Bucket> buckets_;
  std::size_t size_ = 0;
};

}  // namespace ppsi::support
