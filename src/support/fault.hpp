#pragma once

// Deterministic fault injection for the serving stack's chaos tests.
//
// A PPSI_FAULT_POINT(name) marks a boundary where production code is
// prepared to contain a failure: scratch-arena growth (allocation), slice /
// path / decomposition solves (exceptions), scheduler task entry (delays).
// The macro compiles to nothing unless the library is built with
// -DPPSI_FAULT_INJECTION=ON (CMake option), so release builds carry zero
// overhead — the chaos CI leg and the chaos differential suite
// (tests/differential/test_differential_chaos.cpp) build with it ON.
//
// When compiled in, every visit consults the process-wide FaultInjector.
// An armed FaultPlan fires pseudo-randomly but *deterministically*: the
// decision is a hash of (plan seed, global visit counter), so a fixed seed
// and a serial schedule replay exactly; under concurrency the counter
// interleaving varies but the fire *rate* and kinds stay seed-stable.
// Injected failures are ordinary exceptions (InjectedFault or
// std::bad_alloc), which the containment layer maps to
// StatusCode::kInternal / kResourceExhausted — precisely the paths the
// chaos suite exists to pin.
//
// Cancellation storms are driven from the tests themselves (flipping
// PendingResult tokens mid-flight); the injector contributes the other
// three fault classes: thrown errors, allocation failures, and scheduler
// delays.

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace ppsi::support {

/// The exception an armed injector throws at a fault point. Derives from
/// std::runtime_error so generic containment needs no special case; the
/// message names the point for test diagnostics.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& point)
      : std::runtime_error("injected fault at " + point) {}
};

enum class FaultKind {
  kThrow,     ///< throw InjectedFault
  kBadAlloc,  ///< throw std::bad_alloc (simulated allocation failure)
  kDelay,     ///< sleep a deterministic few hundred microseconds
  kMixed,     ///< the visit hash picks one of the three above
};

struct FaultPlan {
  std::uint64_t seed = 0;
  /// Fire roughly one visit in `rate`; 0 disables the plan entirely.
  std::uint32_t rate = 0;
  FaultKind kind = FaultKind::kThrow;
  /// Only points whose name contains this substring fire (empty = all).
  std::string point_filter;
};

/// Cumulative injector counters (reset_stats() zeroes them).
struct FaultStats {
  std::uint64_t visits = 0;
  std::uint64_t thrown = 0;          ///< InjectedFault throws
  std::uint64_t alloc_failures = 0;  ///< std::bad_alloc throws
  std::uint64_t delays = 0;
  std::uint64_t fired() const { return thrown + alloc_failures + delays; }
};

class FaultInjector {
 public:
  static FaultInjector& instance();

  /// True when the library was built with PPSI_FAULT_INJECTION=ON (i.e.
  /// the fault points exist at all). arm()/disarm() are always callable;
  /// with the points compiled out an armed plan simply never fires, so
  /// chaos tests run fault-free — but still assert their invariants —
  /// in default builds.
  static constexpr bool compiled_in() {
#ifdef PPSI_FAULT_INJECTION
    return true;
#else
    return false;
#endif
  }

  void arm(const FaultPlan& plan);
  void disarm();
  bool armed() const;
  FaultStats stats() const;
  void reset_stats();

  /// The injection-point body; reach it through PPSI_FAULT_POINT, never
  /// directly. May throw InjectedFault or std::bad_alloc, or sleep.
  void visit(const char* point);

 private:
  FaultInjector() = default;
  mutable std::mutex mutex_;
  FaultPlan plan_;       // rate == 0 <=> disarmed
  FaultStats stats_;
  std::uint64_t counter_ = 0;
};

/// RAII plan for tests: arms on construction, disarms (and leaves the
/// stats readable) on destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan) {
    FaultInjector::instance().arm(plan);
  }
  ~ScopedFaultPlan() { FaultInjector::instance().disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace ppsi::support

#ifdef PPSI_FAULT_INJECTION
#define PPSI_FAULT_POINT(name) \
  ::ppsi::support::FaultInjector::instance().visit(name)
#else
#define PPSI_FAULT_POINT(name) ((void)0)
#endif
