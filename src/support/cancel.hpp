#pragma once

// Per-query cancellation and deadline primitives for the serving layer.
//
// CancelWatermark (support/scheduler.hpp) cancels *within* one cover run:
// "first accepting index wins" lowers a monotone index mark and queued work
// above it skips itself. A CancelToken generalizes that across a whole
// query: any thread may flip it, every cooperative checkpoint (slice tasks,
// path tasks, per-node DP loops, between-runs budget checks) observes it,
// and the query returns StatusCode::kCancelled carrying whatever partial
// result the deterministic replay had already accounted — the same shape
// as a work/deadline interruption.
//
// DeadlineClock is the wall-clock twin: armed once with an absolute
// deadline, then polled from the same checkpoints, so an exceeded
// QueryOptions::deadline_seconds preempts *mid-cover* instead of only
// between cover runs. Both are monotone (once cancelled/expired, forever
// cancelled/expired), which keeps interrupted runs replayable: a
// checkpoint that observed "keep going" can never be contradicted by an
// earlier one.
//
// ParkGate is the third, *resumable* signal: the pool-side scheduler asks a
// running query to suspend (request_park), the query acknowledges at its
// next slice-boundary checkpoint (park blocks until resume) and continues
// afterwards with all state retained. Unlike token/deadline it is not a
// cancellation — nothing is discarded, the query's results are unchanged —
// so it is deliberately NOT part of CancelScope::cancelled(): parked work
// pauses between slices, it never skips them.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <limits>
#include <mutex>

namespace ppsi::support {

/// One query's cancellation flag. cancel() may be called from any thread,
/// any number of times; cancelled() is a cheap acquire-load, safe to poll
/// from hot loops. Monotone: never resets.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// An absolute wall-clock deadline. arm() before publishing to other
/// threads (armed_ is intentionally plain: it is written once, before the
/// clock becomes shared, and read-only afterwards); expired() is then safe
/// to poll concurrently. Unarmed clocks never expire.
class DeadlineClock {
 public:
  DeadlineClock() = default;

  /// Sets the deadline `seconds` from now. Call at most once, before the
  /// clock is shared with other threads. A duration that is zero (or
  /// rounds to zero in the clock's resolution — the deadline is exactly
  /// "now") expires *at arm time*, deterministically: expired() is true
  /// from the first poll, independent of whether the clock has advanced a
  /// tick between arm and poll.
  void arm(double seconds) {
    const auto duration = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
    deadline_ = Clock::now() + duration;
    expired_at_arm_ = duration <= Clock::duration::zero();
    armed_ = true;
  }

  bool armed() const { return armed_; }
  bool expired() const {
    return armed_ && (expired_at_arm_ || Clock::now() >= deadline_);
  }

  /// Pushes the deadline `seconds` later. Serving-layer use only: credits
  /// time a parked query spent suspended back to its execution budget
  /// ("the budget clock pauses while parked"). Call from the query's own
  /// thread while no other thread polls the clock (the parked query's
  /// checkpoints are all quiescent between slice rounds). A clock that
  /// expired at arm stays expired — there was never time to give back.
  void extend(double seconds) {
    deadline_ += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  }

  /// Seconds until expiry (negative once expired); +inf when unarmed.
  double remaining_seconds() const {
    if (!armed_) return std::numeric_limits<double>::infinity();
    if (expired_at_arm_) return 0.0;
    return std::chrono::duration<double>(deadline_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point deadline_{};
  bool armed_ = false;
  bool expired_at_arm_ = false;  ///< written with armed_, read-only after
};

/// Cooperative suspend/resume rendezvous of one running query. One side
/// (the pool's admission scheduler) requests the park and later resumes
/// it; the other (the query, on its serving thread) polls park_requested()
/// from slice-boundary checkpoints and, at a safe point, calls park() to
/// block until resume(). One query, one parker: park() must never be
/// reentered or called from two threads (the serving layer runs one query
/// per serving thread, so the slice loop's single park() call satisfies
/// this by construction).
///
/// The request is advisory and best-effort: a query that completes without
/// ever reaching a checkpoint simply finishes, and the requester must not
/// block on the park happening — it learns about an acknowledged park only
/// through the on_parked callback.
class ParkGate {
 public:
  using Callback = std::function<void()>;

  /// `on_parked` runs on the query's thread inside park(), after the query
  /// committed to suspending and before it blocks. The pool uses it to
  /// give the admission slot back; it must not call back into this gate
  /// from the same stack (resume() from *another* thread is fine and may
  /// even land before park() starts waiting — the wakeup is latched).
  explicit ParkGate(Callback on_parked = {})
      : on_parked_(std::move(on_parked)) {}
  ParkGate(const ParkGate&) = delete;
  ParkGate& operator=(const ParkGate&) = delete;

  /// Asks the query to suspend at its next checkpoint. Any thread.
  void request_park() { requested_.store(true, std::memory_order_release); }

  /// Cheap acquire-load; poll from slice-boundary checkpoints.
  bool park_requested() const {
    return requested_.load(std::memory_order_acquire);
  }

  /// Acknowledges the request: runs on_parked, blocks until resume(), and
  /// returns the seconds spent suspended (for budget-clock crediting).
  /// Clears the request on wakeup, so the gate is reusable for the next
  /// park cycle of the same query.
  double park() {
    const auto t0 = std::chrono::steady_clock::now();
    if (on_parked_) on_parked_();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      resumed_cv_.wait(lock, [&] { return resumed_; });
      resumed_ = false;  // consume the latched wakeup
    }
    requested_.store(false, std::memory_order_release);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }

  /// Releases a parked query (or pre-latches the wakeup when the query has
  /// not reached park() yet, so the park returns immediately). Any thread.
  void resume() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      resumed_ = true;
    }
    resumed_cv_.notify_all();
  }

 private:
  std::atomic<bool> requested_{false};
  std::mutex mutex_;
  std::condition_variable resumed_cv_;
  bool resumed_ = false;  // guarded by mutex_
  Callback on_parked_;
};

}  // namespace ppsi::support
