#pragma once

// Per-query cancellation and deadline primitives for the serving layer.
//
// CancelWatermark (support/scheduler.hpp) cancels *within* one cover run:
// "first accepting index wins" lowers a monotone index mark and queued work
// above it skips itself. A CancelToken generalizes that across a whole
// query: any thread may flip it, every cooperative checkpoint (slice tasks,
// path tasks, per-node DP loops, between-runs budget checks) observes it,
// and the query returns StatusCode::kCancelled carrying whatever partial
// result the deterministic replay had already accounted — the same shape
// as a work/deadline interruption.
//
// DeadlineClock is the wall-clock twin: armed once with an absolute
// deadline, then polled from the same checkpoints, so an exceeded
// QueryOptions::deadline_seconds preempts *mid-cover* instead of only
// between cover runs. Both are monotone (once cancelled/expired, forever
// cancelled/expired), which keeps interrupted runs replayable: a
// checkpoint that observed "keep going" can never be contradicted by an
// earlier one.

#include <atomic>
#include <chrono>
#include <limits>

namespace ppsi::support {

/// One query's cancellation flag. cancel() may be called from any thread,
/// any number of times; cancelled() is a cheap acquire-load, safe to poll
/// from hot loops. Monotone: never resets.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// An absolute wall-clock deadline. arm() before publishing to other
/// threads (armed_ is intentionally plain: it is written once, before the
/// clock becomes shared, and read-only afterwards); expired() is then safe
/// to poll concurrently. Unarmed clocks never expire.
class DeadlineClock {
 public:
  DeadlineClock() = default;

  /// Sets the deadline `seconds` from now. Call at most once, before the
  /// clock is shared with other threads.
  void arm(double seconds) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    armed_ = true;
  }

  bool armed() const { return armed_; }
  bool expired() const { return armed_ && Clock::now() >= deadline_; }

  /// Seconds until expiry (negative once expired); +inf when unarmed.
  double remaining_seconds() const {
    if (!armed_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(deadline_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point deadline_{};
  bool armed_ = false;
};

}  // namespace ppsi::support
