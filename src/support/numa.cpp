#include "support/numa.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sched.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#if defined(PPSI_HAVE_LIBNUMA)
#include <numa.h>
#endif
#endif  // __linux__

namespace ppsi::support::numa {

namespace {

#if defined(__linux__)

/// Parses a sysfs cpulist ("0-3,8,10-11") into a cpu_set_t. Returns the
/// number of CPUs added (0 on parse failure).
int parse_cpulist(const char* text, cpu_set_t* set) {
  int added = 0;
  const char* p = text;
  while (*p != '\0' && *p != '\n') {
    char* end = nullptr;
    const long lo = std::strtol(p, &end, 10);
    if (end == p || lo < 0 || lo >= CPU_SETSIZE) return 0;
    long hi = lo;
    p = end;
    if (*p == '-') {
      ++p;
      hi = std::strtol(p, &end, 10);
      if (end == p || hi < lo || hi >= CPU_SETSIZE) return 0;
      p = end;
    }
    for (long cpu = lo; cpu <= hi; ++cpu) {
      CPU_SET(static_cast<int>(cpu), set);
      ++added;
    }
    if (*p == ',') ++p;
  }
  return added;
}

int count_nodes() {
  // Online nodes appear as /sys/devices/system/node/nodeN. Probe
  // ascending ids; node directories are dense on Linux.
  int n = 0;
  while (true) {
    const std::string path =
        "/sys/devices/system/node/node" + std::to_string(n) + "/cpulist";
    if (access(path.c_str(), R_OK) != 0) break;
    ++n;
    if (n >= 1024) break;  // defensive
  }
  return n > 0 ? n : 1;
}

#endif  // __linux__

}  // namespace

bool enabled() {
  static const bool on = [] {
    const char* env = std::getenv("PPSI_NUMA");
    return env != nullptr &&
           (std::strcmp(env, "1") == 0 || std::strcmp(env, "ON") == 0 ||
            std::strcmp(env, "on") == 0);
  }();
  return on;
}

int num_nodes() {
#if defined(__linux__)
  static const int n = count_nodes();
  return n;
#else
  return 1;
#endif
}

int current_node() {
#if defined(__linux__)
  unsigned cpu = 0;
  unsigned node = 0;
  if (getcpu(&cpu, &node) != 0) return -1;
  return static_cast<int>(node);
#else
  return -1;
#endif
}

int bind_current_thread(int node) {
#if defined(__linux__)
  if (node < 0 || node >= num_nodes()) return -1;
  const std::string path =
      "/sys/devices/system/node/node" + std::to_string(node) + "/cpulist";
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return -1;
  char buf[4096];
  const bool read_ok = std::fgets(buf, sizeof buf, f) != nullptr;
  std::fclose(f);
  if (!read_ok) return -1;
  cpu_set_t set;
  CPU_ZERO(&set);
  if (parse_cpulist(buf, &set) == 0) return -1;
  if (sched_setaffinity(0, sizeof set, &set) != 0) return -1;
#if defined(PPSI_HAVE_LIBNUMA)
  if (::numa_available() >= 0) ::numa_set_preferred(node);
#endif
  return node;
#else
  (void)node;
  return -1;
#endif
}

int preferred_node_for_worker(unsigned long index) {
  const int nodes = num_nodes();
  return nodes > 1 ? static_cast<int>(index % static_cast<unsigned long>(
                                                  nodes))
                   : 0;
}

}  // namespace ppsi::support::numa
