#pragma once

// Fork-join primitives realizing the paper's CREW PRAM steps as OpenMP
// parallel loops. Every primitive is deterministic: results never depend on
// the schedule, only on the inputs (randomized algorithms draw from
// per-index RNG streams, see rng.hpp).

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <numeric>
#include <omp.h>
#include <type_traits>
#include <vector>

namespace ppsi::support {

/// Number of OpenMP threads a parallel region will use.
inline int num_threads() { return omp_get_max_threads(); }

/// Grain below which parallel loops fall back to serial execution.
inline constexpr std::size_t kDefaultGrain = 2048;

namespace detail {

// Fork/join epochs mirroring parallel_for's region boundaries with edges
// TSan can see (libgomp's futex barriers are uninstrumented, and the
// region's shared-variable struct is written at the call site, after every
// caller statement — only an in-region handshake can order it). Thread 0
// is the caller: its release-increment inside the region is ordered after
// the caller's setup; workers acquire it after the entry barrier before
// first touching shared state, and release their own increment on the way
// out for the caller's post-region acquire. Same pattern as
// support/scheduler.cpp's region epochs.
inline std::atomic<std::uint64_t> pfor_fork_epoch{0};
inline std::atomic<std::uint64_t> pfor_join_epoch{0};

// First-exception trap for loop bodies running inside an OMP worksharing
// region, where an escaping exception would std::terminate the process.
// capture() records the first failure; later iterations short-circuit via
// failed() so a poisoned loop drains fast; rethrow() re-raises on the
// calling thread after the region joins, letting the failure unwind
// through ordinary code into the query-boundary containment.
class RegionTrap {
 public:
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  void capture() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) error_ = std::current_exception();
    failed_.store(true, std::memory_order_release);
  }
  void rethrow() {
    if (!failed()) return;
    std::exception_ptr error;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  std::atomic<bool> failed_{false};
  std::mutex mutex_;
  std::exception_ptr error_;
};

}  // namespace detail

/// Applies f(i) for i in [begin, end). One PRAM round over `end - begin`
/// items; f must be safe to run concurrently for distinct i.
template <typename F>
void parallel_for(std::size_t begin, std::size_t end, F&& f,
                  std::size_t grain = kDefaultGrain) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  if (count < grain) {
    for (std::size_t i = begin; i < end; ++i) f(i);
    return;
  }
  detail::RegionTrap trap;
#pragma omp parallel default(shared)
  {
    if (omp_get_thread_num() == 0)
      detail::pfor_fork_epoch.fetch_add(1, std::memory_order_release);
#pragma omp barrier
    detail::pfor_fork_epoch.load(std::memory_order_acquire);
#pragma omp for schedule(static)
    for (std::size_t i = begin; i < end; ++i) {
      if (!trap.failed()) {
        try {
          f(i);
        } catch (...) {
          trap.capture();
        }
      }
    }
    detail::pfor_join_epoch.fetch_add(1, std::memory_order_release);
  }
  detail::pfor_join_epoch.load(std::memory_order_acquire);
  trap.rethrow();
}

/// One per-thread accumulator slot, padded to a cache line so adjacent
/// threads' partials never share one (the unpadded layout made every
/// partial-write a coherence miss on its neighbors).
template <typename T>
struct alignas(alignof(T) > 64 ? alignof(T) : 64) PaddedAccumulator {
  T value;
};

/// Parallel reduction of f(i) over [begin, end) with a commutative,
/// associative combiner; `identity` is the combiner's neutral element.
template <typename T, typename F, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T identity, F&& f,
                  Combine&& combine, std::size_t grain = kDefaultGrain) {
  if (end <= begin) return identity;
  const std::size_t count = end - begin;
  if (count < grain) {
    T acc = identity;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, f(i));
    return acc;
  }
  const int threads = num_threads();
  std::vector<PaddedAccumulator<T>> partial(static_cast<std::size_t>(threads),
                                            PaddedAccumulator<T>{identity});
  detail::RegionTrap trap;
#pragma omp parallel
  {
    const int t = omp_get_thread_num();
    T acc = identity;
#pragma omp for schedule(static) nowait
    for (std::size_t i = begin; i < end; ++i) {
      if (!trap.failed()) {
        try {
          acc = combine(acc, f(i));
        } catch (...) {
          trap.capture();
        }
      }
    }
    partial[static_cast<std::size_t>(t)].value = acc;
  }
  trap.rethrow();
  T acc = identity;
  for (const PaddedAccumulator<T>& p : partial) acc = combine(acc, p.value);
  return acc;
}

/// Sum reduction convenience wrapper.
template <typename T, typename F>
T parallel_sum(std::size_t begin, std::size_t end, F&& f) {
  return parallel_reduce<T>(begin, end, T{}, std::forward<F>(f),
                            [](T a, T b) { return a + b; });
}

/// Exclusive prefix sum of `values` in place; returns the total.
/// Two-pass blocked scan (O(n) work, O(log n) PRAM depth shape).
template <typename T>
T exclusive_scan_inplace(std::vector<T>& values) {
  const std::size_t n = values.size();
  if (n == 0) return T{};
  const int threads = num_threads();
  if (n < kDefaultGrain || threads == 1) {
    T total{};
    for (std::size_t i = 0; i < n; ++i) {
      T v = values[i];
      values[i] = total;
      total += v;
    }
    return total;
  }
  const std::size_t blocks = static_cast<std::size_t>(threads);
  const std::size_t block_size = (n + blocks - 1) / blocks;
  std::vector<T> block_total(blocks, T{});
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * block_size;
    const std::size_t hi = std::min(n, lo + block_size);
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) acc += values[i];
    block_total[b] = acc;
  }
  T total{};
  for (std::size_t b = 0; b < blocks; ++b) {
    T v = block_total[b];
    block_total[b] = total;
    total += v;
  }
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * block_size;
    const std::size_t hi = std::min(n, lo + block_size);
    T acc = block_total[b];
    for (std::size_t i = lo; i < hi; ++i) {
      T v = values[i];
      values[i] = acc;
      acc += v;
    }
  }
  return total;
}

/// Returns the indices i in [0, n) with keep(i), in increasing order.
/// Parallel pack via per-block counting + scan.
template <typename Pred>
std::vector<std::uint32_t> pack_indices(std::size_t n, Pred&& keep) {
  std::vector<std::uint32_t> flags(n);
  parallel_for(0, n, [&](std::size_t i) { flags[i] = keep(i) ? 1u : 0u; });
  std::vector<std::uint32_t> pos = flags;
  const std::uint32_t total = exclusive_scan_inplace(pos);
  std::vector<std::uint32_t> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (flags[i]) out[pos[i]] = static_cast<std::uint32_t>(i);
  });
  return out;
}

/// Packs values[i] for which keep(i) holds, preserving order.
template <typename T, typename Pred>
std::vector<T> pack_values(const std::vector<T>& values, Pred&& keep) {
  const std::size_t n = values.size();
  std::vector<std::uint32_t> pos(n);
  parallel_for(0, n, [&](std::size_t i) { pos[i] = keep(i) ? 1u : 0u; });
  const std::uint32_t total = exclusive_scan_inplace(pos);
  std::vector<T> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (keep(i)) out[pos[i]] = values[i];
  });
  return out;
}

}  // namespace ppsi::support
