#pragma once

// Work/depth accounting.
//
// The paper states its results as PRAM work (total operations) and depth
// (length of the critical path). We measure both machine-independently:
//   * work  – instrumented operation counts (each algorithm ticks the counter
//             for the dominant unit of work it performs), and
//   * rounds – the number of synchronous parallel steps executed (BFS levels,
//             clustering rounds, shortcut-BFS hops, DP layers). A PRAM
//             algorithm of depth D runs in O(D) such rounds, so round counts
//             are the empirical proxy benches compare against the bounds.

#include <atomic>
#include <cstdint>

namespace ppsi::support {

/// Accumulates work and round counts for one algorithm invocation.
/// Thread-safe: parallel regions accumulate locally and flush once.
class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics& other)
      : work_(other.work()), rounds_(other.rounds()) {}
  Metrics& operator=(const Metrics& other) {
    work_.store(other.work(), std::memory_order_relaxed);
    rounds_.store(other.rounds(), std::memory_order_relaxed);
    return *this;
  }

  void add_work(std::uint64_t ops) {
    work_.fetch_add(ops, std::memory_order_relaxed);
  }
  void add_rounds(std::uint64_t rounds) {
    rounds_.fetch_add(rounds, std::memory_order_relaxed);
  }
  /// Records a sub-computation: its work adds, its rounds add (sequential
  /// composition of parallel phases).
  void absorb(const Metrics& sub) {
    add_work(sub.work());
    add_rounds(sub.rounds());
  }
  /// Records parallel composition: work adds, rounds take the maximum.
  void absorb_parallel(const Metrics& sub) {
    add_work(sub.work());
    std::uint64_t current = rounds_.load(std::memory_order_relaxed);
    const std::uint64_t candidate = sub.rounds();
    while (candidate > current &&
           !rounds_.compare_exchange_weak(current, candidate,
                                          std::memory_order_relaxed)) {
    }
  }

  std::uint64_t work() const { return work_.load(std::memory_order_relaxed); }
  std::uint64_t rounds() const {
    return rounds_.load(std::memory_order_relaxed);
  }
  void reset() {
    work_.store(0, std::memory_order_relaxed);
    rounds_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> work_{0};
  std::atomic<std::uint64_t> rounds_{0};
};

}  // namespace ppsi::support
