#pragma once

// Work/depth accounting.
//
// The paper states its results as PRAM work (total operations) and depth
// (length of the critical path). We measure both machine-independently:
//   * work  – instrumented operation counts (each algorithm ticks the counter
//             for the dominant unit of work it performs), and
//   * rounds – the number of synchronous parallel steps executed (BFS levels,
//             clustering rounds, shortcut-BFS hops, DP layers). A PRAM
//             algorithm of depth D runs in O(D) such rounds, so round counts
//             are the empirical proxy benches compare against the bounds.
//
// Two memory-side counters ride along (support/arena.hpp):
//   * allocs – scratch-arena allocation events (a reusable buffer had to
//             grow). Flat-at-zero across repeated queries demonstrates the
//             engine reaches steady state without allocating.
//   * scratch_peak_bytes – high-water mark of the serving threads' scratch
//             residency. Arenas live for the thread and are reused across
//             queries, so a query on a thread that previously served a
//             larger one reports the larger footprint: the counter answers
//             "how much scratch was resident", not "how much this query
//             alone required". Composes as a maximum (thread-local, not
//             summed).

#include <atomic>
#include <cstdint>

namespace ppsi::support {

/// Accumulates work and round counts for one algorithm invocation.
/// Thread-safe: parallel regions accumulate locally and flush once.
class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics& other)
      : work_(other.work()),
        rounds_(other.rounds()),
        allocs_(other.allocs()),
        scratch_peak_(other.scratch_peak_bytes()),
        simd_variant_(other.simd_variant()),
        numa_node_(other.numa_node()) {}
  Metrics& operator=(const Metrics& other) {
    work_.store(other.work(), std::memory_order_relaxed);
    rounds_.store(other.rounds(), std::memory_order_relaxed);
    allocs_.store(other.allocs(), std::memory_order_relaxed);
    scratch_peak_.store(other.scratch_peak_bytes(),
                        std::memory_order_relaxed);
    simd_variant_.store(other.simd_variant(), std::memory_order_relaxed);
    numa_node_.store(other.numa_node(), std::memory_order_relaxed);
    return *this;
  }

  void add_work(std::uint64_t ops) {
    work_.fetch_add(ops, std::memory_order_relaxed);
  }
  void add_rounds(std::uint64_t rounds) {
    rounds_.fetch_add(rounds, std::memory_order_relaxed);
  }
  void add_allocs(std::uint64_t events) {
    allocs_.fetch_add(events, std::memory_order_relaxed);
  }
  /// Raises the recorded scratch high-water mark (max-merge).
  void note_scratch_peak(std::uint64_t bytes) {
    fetch_max(scratch_peak_, bytes);
  }
  /// Placement attestations (-1 = unset): which SIMD kernel variant the
  /// run dispatched to (support::simd::Variant as int) and which NUMA node
  /// the reporting thread's scratch arena first grew on. These describe
  /// *where/how* the work ran, not how much — they never affect the work
  /// contract and are emitted as optional counters in bench records.
  void note_simd_variant(std::int64_t variant) {
    simd_variant_.store(variant, std::memory_order_relaxed);
  }
  void note_numa_node(std::int64_t node) {
    numa_node_.store(node, std::memory_order_relaxed);
  }
  /// Records a sub-computation: its work adds, its rounds add (sequential
  /// composition of parallel phases). Allocation events add; scratch peaks
  /// max-merge (per-thread arenas are reused, not stacked).
  void absorb(const Metrics& sub) {
    add_work(sub.work());
    add_rounds(sub.rounds());
    add_allocs(sub.allocs());
    note_scratch_peak(sub.scratch_peak_bytes());
    absorb_attestations(sub);
  }
  /// Records parallel composition: work adds, rounds take the maximum.
  void absorb_parallel(const Metrics& sub) {
    add_work(sub.work());
    fetch_max(rounds_, sub.rounds());
    add_allocs(sub.allocs());
    note_scratch_peak(sub.scratch_peak_bytes());
    absorb_attestations(sub);
  }

  std::uint64_t work() const { return work_.load(std::memory_order_relaxed); }
  std::uint64_t rounds() const {
    return rounds_.load(std::memory_order_relaxed);
  }
  std::uint64_t allocs() const {
    return allocs_.load(std::memory_order_relaxed);
  }
  std::uint64_t scratch_peak_bytes() const {
    return scratch_peak_.load(std::memory_order_relaxed);
  }
  std::int64_t simd_variant() const {
    return simd_variant_.load(std::memory_order_relaxed);
  }
  std::int64_t numa_node() const {
    return numa_node_.load(std::memory_order_relaxed);
  }
  void reset() {
    work_.store(0, std::memory_order_relaxed);
    rounds_.store(0, std::memory_order_relaxed);
    allocs_.store(0, std::memory_order_relaxed);
    scratch_peak_.store(0, std::memory_order_relaxed);
    simd_variant_.store(-1, std::memory_order_relaxed);
    numa_node_.store(-1, std::memory_order_relaxed);
  }

 private:
  static void fetch_max(std::atomic<std::uint64_t>& slot,
                        std::uint64_t candidate) {
    std::uint64_t current = slot.load(std::memory_order_relaxed);
    while (candidate > current &&
           !slot.compare_exchange_weak(current, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  /// A sub-computation's attestations win when set (-1 means "never
  /// recorded"); absorbing keeps the most recent concrete value.
  void absorb_attestations(const Metrics& sub) {
    if (sub.simd_variant() >= 0) note_simd_variant(sub.simd_variant());
    if (sub.numa_node() >= 0) note_numa_node(sub.numa_node());
  }

  std::atomic<std::uint64_t> work_{0};
  std::atomic<std::uint64_t> rounds_{0};
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> scratch_peak_{0};
  std::atomic<std::int64_t> simd_variant_{-1};
  std::atomic<std::int64_t> numa_node_{-1};
};

}  // namespace ppsi::support
