#pragma once

// Runtime-dispatched SIMD kernels for the DP group-probing layer.
//
// The hot probe paths (FlatMap lookups, SigIndex membership) hash batches
// of packed StateKeys — pairs of 64-bit words mixed by
// support::hash_combine (rng.hpp). This header exposes that hash as a
// batch kernel with per-variant implementations:
//
//   kScalar – portable reference (always available; the differential
//             baseline every other variant must match bit-for-bit)
//   kSse2   – 2 lanes  (x86-64 baseline)
//   kAvx2   – 4 lanes  (runtime-detected; compiled with a `target`
//             attribute so the translation unit builds without -mavx2)
//   kNeon   – 2 lanes  (AArch64 baseline)
//
// Dispatch is compile-time safe: variants whose intrinsics the target
// architecture lacks are compiled out entirely and report unsupported at
// runtime; forcing an unsupported variant falls back to scalar. The
// active variant resolves once per process from (test override >
// PPSI_SIMD env > best detected) and is exposed so metrics/bench records
// can attest which kernel actually ran.
//
// The kernels are *identity-preserving*: every variant produces the exact
// output of the scalar reference (the SIMD forms emulate the 64-bit
// multiply of splitmix64 with 32-bit partial products), so switching
// variants can never change lookup results — only wall clock. The
// kernel-differential suite pins this over a seeded corpus.

#include <cstddef>
#include <cstdint>

namespace ppsi::support::simd {

enum class Variant : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// Lowercase name used by PPSI_SIMD and in bench/CI output.
const char* variant_name(Variant v);

/// True when this build + CPU can execute `v`.
bool variant_supported(Variant v);

/// Best variant the current CPU supports (ignores overrides).
Variant detected_variant();

/// The variant the dispatched kernels run: test override if set, else
/// PPSI_SIMD=scalar|sse2|avx2|neon (unsupported or unknown values fall
/// back to scalar with a one-time stderr note), else detected_variant().
Variant active_variant();

/// Test/bench hook: force every subsequent dispatched call to `v`
/// (unsupported variants degrade to scalar). Overrides PPSI_SIMD.
void force_variant(Variant v);
/// Clears force_variant (back to env/detection).
void clear_forced_variant();

/// out[i] = hash_combine(pairs[2i], pairs[2i+1]) for i < n, using the
/// active variant. `pairs` is the interleaved (a, b) layout of a packed
/// StateKey array (code, sep, code, sep, ...).
void hash_pairs(const std::uint64_t* pairs, std::size_t n,
                std::uint64_t* out);

/// Same, with an explicit variant (unsupported variants run scalar).
void hash_pairs_with(Variant v, const std::uint64_t* pairs, std::size_t n,
                     std::uint64_t* out);

/// Portable reference implementation (the differential baseline).
void hash_pairs_scalar(const std::uint64_t* pairs, std::size_t n,
                       std::uint64_t* out);

}  // namespace ppsi::support::simd
