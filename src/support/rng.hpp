#pragma once

// Deterministic, splittable random number streams.
//
// The PRAM model gives each processor an independent random word per step
// (paper §1.1). We realize that with counter-derived streams: stream i of
// seed s is a xoshiro256** engine seeded from SplitMix64(s, i). Any parallel
// loop that needs randomness draws stream(i) per index, so results are
// reproducible under any thread schedule.

#include <cmath>
#include <cstdint>
#include <limits>

namespace ppsi::support {

/// SplitMix64 step; used for seeding and cheap stateless hashing.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Mixes two words into one (order-sensitive).
inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// xoshiro256** engine: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  /// Stream `stream` of master seed `seed`; distinct (seed, stream) pairs
  /// give statistically independent sequences.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) {
    std::uint64_t x = hash_combine(seed, stream);
    for (auto& word : state_) {
      x = splitmix64(x);
      word = x;
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed value with the given mean (inverse CDF).
  double next_exponential(double mean) {
    double u = next_double();
    // Guard against log(0).
    if (u >= 1.0) u = std::nextafter(1.0, 0.0);
    return -mean * std::log1p(-u);
  }

  /// Fair coin.
  bool next_bool() { return (next_u64() & 1ULL) != 0; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace ppsi::support
