#include "support/scheduler.hpp"

#include <omp.h>

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "support/fault.hpp"
#include "support/numa.hpp"
#include "support/types.hpp"

namespace ppsi::support {

std::uint32_t TaskGraph::add(Fn fn) {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back(std::move(fn));
  return id;
}

void TaskGraph::add_edge(std::uint32_t pred, std::uint32_t succ) {
  require(pred < nodes_.size() && succ < nodes_.size(),
          "TaskGraph::add_edge: unknown task id");
  nodes_[pred].successors.push_back(succ);
  nodes_[succ].pending.fetch_add(1, std::memory_order_relaxed);
}

namespace detail {

/// Per-run() execution state. Lives on the calling frame; tasks reference
/// it for the duration of the run (run() does not return before every task
/// finished, so the lifetime is safe).
class GraphRun;

namespace {

// Task handoff. libgomp copies a task's firstprivate frame into its own
// (uninstrumented) heap and hands it over through futex-based queues TSan
// cannot order, so spawned tasks capture NOTHING: the (run, task id) pair
// travels through this mutex-guarded global stack instead — pthread
// mutexes are TSan-instrumented, so every edge of the handoff is visible.
//
// LIFO is load-bearing, not a preference. Which OMP task object pops
// which entry is decoupled, and at one thread a run's taskgroup must be
// able to finish on its own objects: LIFO keeps the stack top owned by
// the innermost active run (nested runs push above their parents'
// remaining entries), so a run's objects drain the run's own entries and
// a foreign entry is only ever popped where other threads exist to finish
// it. Entries are pushed before their task object is created, so the
// stack is provably non-empty at every pop.
std::mutex ready_mutex;
std::vector<std::pair<GraphRun*, std::uint32_t>> ready_stack;

/// Body of every spawned task (no captures): pop the newest handoff entry
/// and execute it.
void execute_from_ready_stack();

}  // namespace

class GraphRun {
 public:
  explicit GraphRun(TaskGraph& graph) : graph_(graph) {}

  /// Fork edge, caller side: release-publishes the run state and the graph
  /// (both built non-atomically) BEFORE any other thread can reach them —
  /// i.e. before the parallel region opens. With `single nowait` any team
  /// member may become the spawner, so the publish cannot wait until
  /// run_all.
  void publish() { published_.store(1, std::memory_order_release); }
  /// Fork edge, team side: first thing every team thread (and every task
  /// body) does.
  void join_fork_edge() { published_.load(std::memory_order_acquire); }

  void run_all() {
    join_fork_edge();
    // Snapshot the root set BEFORE spawning anything: once the first root
    // is live, predecessors may finish and drive other counters to zero
    // concurrently, and reading the live counters here would spawn such a
    // successor twice (its own predecessor spawns it as well).
    const std::size_t n = graph_.nodes_.size();
    std::vector<std::uint32_t> roots;
    for (std::uint32_t id = 0; id < n; ++id) {
      if (graph_.nodes_[id].pending.load(std::memory_order_relaxed) == 0)
        roots.push_back(id);
    }
#pragma omp taskgroup
    {
      // Reverse order: the handoff stack is LIFO, so descending pushes
      // make concurrent pops start with the LOWEST root ids — the
      // low-index completion bias first-accepting-index queries rely on.
      for (auto it = roots.rbegin(); it != roots.rend(); ++it) spawn(*it);
    }
    await_joined();
  }

  /// Join edge: acquire-syncs with every task's finished-increment. The
  /// taskgroup (or region barrier) already joined, so the spin is
  /// momentary; it exists because the thread that returns to the caller
  /// must own the edge itself — with `single nowait` the spawner may be a
  /// worker, and libgomp's barriers are invisible to TSan.
  void await_joined() const {
    while (finished_.load(std::memory_order_acquire) < graph_.nodes_.size()) {
    }
  }

  void execute(std::uint32_t id) {
    // Fork edge (see publish). For tasks with predecessors the acquire load
    // of the own ready counter additionally synchronizes with the release
    // sequence of every predecessor's decrement.
    join_fork_edge();
    TaskGraph::Node& node = graph_.nodes_[id];
    node.pending.load(std::memory_order_acquire);
    // Exception containment at the task boundary: an exception escaping an
    // OMP task body terminates the process, so the first failure is
    // recorded here and rethrown by run() on the calling thread. Later
    // tasks of a failed run skip their body (the run's outcome is decided;
    // draining fast matters more) but still propagate successor counts and
    // the finished increment, so the graph drains and joins normally.
    if (node.fn && !failed_.load(std::memory_order_acquire)) {
      try {
        PPSI_FAULT_POINT("scheduler.task");
        node.fn();
      } catch (...) {
        record_failure();
      }
    }
    for (const std::uint32_t succ : node.successors) {
      if (graph_.nodes_[succ].pending.fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        spawn(succ);
      }
    }
    finished_.fetch_add(1, std::memory_order_release);
  }

  /// Rethrows the run's first recorded task failure, if any. Called by
  /// Scheduler::run after the join, on the thread that returns to the
  /// caller — from there the exception unwinds through ordinary
  /// single-threaded code into the query-boundary containment.
  void rethrow_if_failed() const {
    if (!failed_.load(std::memory_order_acquire)) return;
    std::exception_ptr error;
    {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void record_failure() {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    if (!error_) error_ = std::current_exception();
    failed_.store(true, std::memory_order_release);
  }

  void spawn(std::uint32_t id) {
    {
      const std::lock_guard<std::mutex> lock(ready_mutex);
      ready_stack.emplace_back(this, id);
    }
#pragma omp task default(none)
    execute_from_ready_stack();
  }

  TaskGraph& graph_;
  std::atomic<std::uint32_t> published_{0};
  std::atomic<std::size_t> finished_{0};
  // Failure containment (see execute). failed_ is the fast-path flag;
  // error_ holds the first exception, guarded by error_mutex_ because
  // multiple tasks can fail concurrently.
  std::atomic<bool> failed_{false};
  mutable std::mutex error_mutex_;
  std::exception_ptr error_;
};

namespace {

void execute_from_ready_stack() {
  GraphRun* run;
  std::uint32_t id;
  {
    const std::lock_guard<std::mutex> lock(ready_mutex);
    run = ready_stack.back().first;
    id = ready_stack.back().second;
    ready_stack.pop_back();
  }
  run->execute(id);
}

}  // namespace

}  // namespace detail

namespace {

// Fork/join epochs of top-level (region-opening) runs. libgomp's futex
// barriers are invisible to TSan, and the compiler materializes the
// region's shared-variable struct on the caller's stack at the region
// call site — after every user statement — so no member atomic can order
// workers' first reads of that struct. These globals can: thread 0 of the
// region IS the caller, so its in-region release-increment is ordered
// after all of the caller's setup writes, and a worker's acquire-load
// after the entry barrier is guaranteed (by the real barrier) to observe
// it, handing TSan the fork edge before the worker first touches shared
// state. The join epoch mirrors this at region exit. Shared across
// concurrent top-level runs by design: extra observed increments only add
// ordering, never remove it.
std::atomic<std::uint64_t> fork_epoch{0};
std::atomic<std::uint64_t> join_epoch{0};

}  // namespace

namespace {

// The detached serving pool behind Scheduler::submit. Plain std::threads,
// not OMP: each serving thread must be able to open OMP parallel regions
// of its own (a submitted query calls Scheduler::run), which a thread that
// is itself an OMP task could not do without nesting inside the submitting
// team. Lazily started on first submit; the function-local singleton joins
// its (idle, queue drained by callers waiting on their results) threads at
// static destruction.
class ServingPool {
 public:
  static ServingPool& instance() {
    static ServingPool pool;
    return pool;
  }

  static std::size_t thread_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return std::clamp(hw / 2u, 2u, 8u);
  }

  void submit(std::function<void()> job, int priority) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(Entry{priority, next_seq_++, std::move(job)});
      if (threads_.empty()) {
        const std::size_t n = thread_count();
        threads_.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
          threads_.emplace_back([this, i] { worker_loop(i); });
      }
    }
    ready_.notify_one();
  }

  ~ServingPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    ready_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

 private:
  /// One queued job. Workers drain by (highest priority, lowest seq): the
  /// seq tiebreak keeps equal-priority jobs strictly FIFO, so default
  /// submissions behave exactly as before priorities existed.
  struct Entry {
    int priority = 0;
    std::uint64_t seq = 0;
    std::function<void()> job;
  };

  void worker_loop(std::size_t index) {
    // Opt-in explicit NUMA placement (PPSI_NUMA=ON): workers pin
    // round-robin across the online nodes before touching any scratch, so
    // their thread_local arenas first-touch — and stay — on the bound
    // node. Off (the default) or on single-node hosts this is a no-op and
    // placement falls back to plain first-touch.
    if (numa::enabled() && numa::num_nodes() > 1)
      numa::bind_current_thread(numa::preferred_node_for_worker(index));
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and drained
        auto best = queue_.begin();
        for (auto it = std::next(best); it != queue_.end(); ++it) {
          if (it->priority > best->priority) best = it;
        }
        job = std::move(best->job);
        queue_.erase(best);
      }
      // Last-resort backstop: an exception escaping a detached serving
      // thread is std::terminate. Every submitted job resolves its own
      // PendingResult handle and contains its own failures (Solver's
      // *_async paths); anything reaching here has already been reported,
      // so swallowing keeps the worker alive for the next job.
      try {
        job();
      } catch (...) {
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Entry> queue_;
  std::uint64_t next_seq_ = 0;  // guarded by mutex_
  std::vector<std::thread> threads_;  // guarded by mutex_ until started
  bool stop_ = false;
};

}  // namespace

void Scheduler::submit(std::function<void()> job, int priority) {
  ServingPool::instance().submit(std::move(job), priority);
}

void Scheduler::submit(TaskGraph graph, std::function<void()> on_complete) {
  // shared_ptr: std::function requires copyable callables, and the graph
  // must survive until the serving thread runs it.
  auto owned = std::make_shared<TaskGraph>(std::move(graph));
  submit([owned, on_complete = std::move(on_complete)] {
    Scheduler::run(*owned);
    if (on_complete) on_complete();
  });
}

std::size_t Scheduler::serving_threads() {
  return ServingPool::thread_count();
}

void Scheduler::run(TaskGraph& graph) {
  if (graph.size() == 0) return;
  if (!omp_in_parallel() && omp_get_max_threads() == 1) {
    // Serial fast path: with one thread there is nothing to overlap, so
    // skip the region/task/handoff machinery and execute inline in a
    // topological order. Outputs are identical by the determinism
    // contract (tasks write disjoint slots; callers replay reductions in
    // canonical order), and nested runs from inside these tasks take this
    // same path (no region is ever opened). FIFO (cursor over a grow-only
    // worklist), not a stack: lowest-id-ready-first preserves the
    // low-index completion bias first-accepting-index queries rely on for
    // their cancellation watermark (solve_all_slices's window chains
    // would otherwise drain highest chain first).
    std::vector<std::uint32_t> ready;
    const std::size_t n = graph.nodes_.size();
    for (std::uint32_t id = 0; id < n; ++id) {
      if (graph.nodes_[id].pending.load(std::memory_order_relaxed) == 0)
        ready.push_back(id);
    }
    // Mirrors GraphRun's containment: record the first task failure, skip
    // later bodies, keep draining so the cycle check below stays valid,
    // then rethrow to the caller.
    std::exception_ptr error;
    for (std::size_t next = 0; next < ready.size(); ++next) {
      TaskGraph::Node& node = graph.nodes_[ready[next]];
      if (node.fn && !error) {
        try {
          PPSI_FAULT_POINT("scheduler.task");
          node.fn();
        } catch (...) {
          error = std::current_exception();
        }
      }
      for (const std::uint32_t succ : node.successors) {
        if (graph.nodes_[succ].pending.fetch_sub(
                1, std::memory_order_relaxed) == 1) {
          ready.push_back(succ);
        }
      }
    }
    require(ready.size() == n, "Scheduler::run: dependency cycle in TaskGraph");
    if (error) std::rethrow_exception(error);
    return;
  }
  detail::GraphRun state(graph);
  state.publish();
  if (omp_in_parallel()) {
    // Nested start (e.g. a slice task spawning its path tasks): the tasks
    // join the enclosing team; the taskgroup in run_all suspends this task
    // and lets the thread execute descendants meanwhile. The member
    // published_/finished_ atomics carry the fork/join edges (caller and
    // task bodies touch them directly; no region struct is involved).
    state.run_all();
    state.rethrow_if_failed();
  } else {
#pragma omp parallel default(shared)
    {
      if (omp_get_thread_num() == 0)
        fork_epoch.fetch_add(1, std::memory_order_release);
#pragma omp barrier
      fork_epoch.load(std::memory_order_acquire);
#pragma omp single nowait
      state.run_all();
      // Threads other than the one taking `single` fall through to the
      // region's implicit barrier, where they execute spawned tasks
      // (whose accesses the member finished_ counter orders; see
      // await_joined below).
      join_epoch.fetch_add(1, std::memory_order_release);
    }
    // Region joined: every thread's join increment really happened, so
    // this acquire-load observes them all and orders their non-task work
    // before the caller continues; the finished_ spin covers the task
    // bodies themselves (the `single` — and its await_joined — may have
    // run on a worker, so the returning thread must own both edges).
    join_epoch.load(std::memory_order_acquire);
    state.await_joined();
    state.rethrow_if_failed();
  }
}

}  // namespace ppsi::support
