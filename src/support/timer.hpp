#pragma once

// Wall-clock timing helper for benches and examples.

#include <chrono>

namespace ppsi::support {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates the lifetime of a scope into a running total. The bench
/// harness uses this to time explicit measured regions, so a benchmark can
/// exclude setup/verification from the reported seconds:
///
///   { ScopedTimer timed(acc); expensive_call(); }
class ScopedTimer {
 public:
  explicit ScopedTimer(double& accumulator) : accumulator_(accumulator) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { accumulator_ += timer_.seconds(); }

 private:
  double& accumulator_;
  Timer timer_;
};

}  // namespace ppsi::support
