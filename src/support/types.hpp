#pragma once

// Fundamental identifier types shared by every ppsi module.

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ppsi {

/// Vertex identifier. Graphs are limited to < 2^32 vertices, which keeps CSR
/// arrays compact; the paper's regime (planar targets on a shared-memory
/// machine) comfortably fits.
using Vertex = std::uint32_t;

/// Sentinel for "no vertex".
inline constexpr Vertex kNoVertex = std::numeric_limits<Vertex>::max();

/// Undirected edge as an (endpoint, endpoint) pair.
using Edge = std::pair<Vertex, Vertex>;

/// Edge list used by graph builders.
using EdgeList = std::vector<Edge>;

namespace support {

/// Throws std::invalid_argument when an API precondition is violated.
/// Used at module boundaries; hot inner loops use assert() instead.
inline void require(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}

}  // namespace support
}  // namespace ppsi
