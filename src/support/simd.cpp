#include "support/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/rng.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define PPSI_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
#define PPSI_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace ppsi::support::simd {

namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kMix1 = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kMix2 = 0x94d049bb133111ebULL;

// ---- Scalar reference ----

void scalar_kernel(const std::uint64_t* pairs, std::size_t n,
                   std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = hash_combine(pairs[2 * i], pairs[2 * i + 1]);
}

// ---- SSE2 (x86-64 baseline): 2 lanes ----

#ifdef PPSI_SIMD_X86

// 64x64 -> low 64 multiply from 32x32 -> 64 partial products:
// lo(a)*lo(b) + ((hi(a)*lo(b) + lo(a)*hi(b)) << 32).
inline __m128i mul64_sse2(__m128i a, __m128i b) {
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i cross = _mm_add_epi64(
      _mm_mul_epu32(_mm_srli_epi64(a, 32), b),
      _mm_mul_epu32(a, _mm_srli_epi64(b, 32)));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

void sse2_kernel(const std::uint64_t* pairs, std::size_t n,
                 std::uint64_t* out) {
  const __m128i golden = _mm_set1_epi64x(static_cast<long long>(kGolden));
  const __m128i mix1 = _mm_set1_epi64x(static_cast<long long>(kMix1));
  const __m128i mix2 = _mm_set1_epi64x(static_cast<long long>(kMix2));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // pairs[2i..2i+3] = [a0, b0, a1, b1].
    const __m128i p0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(pairs + 2 * i));
    const __m128i p1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(pairs + 2 * i + 2));
    const __m128i a = _mm_unpacklo_epi64(p0, p1);
    const __m128i b = _mm_unpackhi_epi64(p0, p1);
    // x = a ^ (b + kGolden + (a << 6) + (a >> 2))
    __m128i x = _mm_add_epi64(b, golden);
    x = _mm_add_epi64(x, _mm_slli_epi64(a, 6));
    x = _mm_add_epi64(x, _mm_srli_epi64(a, 2));
    x = _mm_xor_si128(a, x);
    // splitmix64(x)
    x = _mm_add_epi64(x, golden);
    x = _mm_xor_si128(x, _mm_srli_epi64(x, 30));
    x = mul64_sse2(x, mix1);
    x = _mm_xor_si128(x, _mm_srli_epi64(x, 27));
    x = mul64_sse2(x, mix2);
    x = _mm_xor_si128(x, _mm_srli_epi64(x, 31));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), x);
  }
  scalar_kernel(pairs + 2 * i, n - i, out + i);
}

// ---- AVX2: 4 lanes, compiled with a target attribute so this TU builds
// without -mavx2 and the call stays behind the runtime CPU check. ----

__attribute__((target("avx2"))) inline __m256i mul64_avx2(__m256i a,
                                                          __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) void avx2_kernel(const std::uint64_t* pairs,
                                                 std::size_t n,
                                                 std::uint64_t* out) {
  const __m256i golden = _mm256_set1_epi64x(static_cast<long long>(kGolden));
  const __m256i mix1 = _mm256_set1_epi64x(static_cast<long long>(kMix1));
  const __m256i mix2 = _mm256_set1_epi64x(static_cast<long long>(kMix2));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Two loads of [a, b, a, b]; unpack into a-lanes and b-lanes. The
    // 128-bit-lane unpack leaves pairs (0, 2 | 1, 3); computing in that
    // order and inverting with one permute keeps out[] in input order.
    const __m256i p0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(pairs + 2 * i));
    const __m256i p1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(pairs + 2 * i + 4));
    const __m256i a = _mm256_unpacklo_epi64(p0, p1);  // a0 a2 | a1 a3
    const __m256i b = _mm256_unpackhi_epi64(p0, p1);  // b0 b2 | b1 b3
    __m256i x = _mm256_add_epi64(b, golden);
    x = _mm256_add_epi64(x, _mm256_slli_epi64(a, 6));
    x = _mm256_add_epi64(x, _mm256_srli_epi64(a, 2));
    x = _mm256_xor_si256(a, x);
    x = _mm256_add_epi64(x, golden);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
    x = mul64_avx2(x, mix1);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
    x = mul64_avx2(x, mix2);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
    x = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(3, 1, 2, 0));  // h0 h1 h2 h3
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
  }
  scalar_kernel(pairs + 2 * i, n - i, out + i);
}

#endif  // PPSI_SIMD_X86

// ---- NEON (AArch64 baseline): 2 lanes ----

#ifdef PPSI_SIMD_NEON

inline uint64x2_t mul64_neon(uint64x2_t a, uint64x2_t b) {
  const uint32x2_t a_lo = vmovn_u64(a);
  const uint32x2_t a_hi = vshrn_n_u64(a, 32);
  const uint32x2_t b_lo = vmovn_u64(b);
  const uint32x2_t b_hi = vshrn_n_u64(b, 32);
  const uint64x2_t lo = vmull_u32(a_lo, b_lo);
  const uint64x2_t cross =
      vaddq_u64(vmull_u32(a_hi, b_lo), vmull_u32(a_lo, b_hi));
  return vaddq_u64(lo, vshlq_n_u64(cross, 32));
}

void neon_kernel(const std::uint64_t* pairs, std::size_t n,
                 std::uint64_t* out) {
  const uint64x2_t golden = vdupq_n_u64(kGolden);
  const uint64x2_t mix1 = vdupq_n_u64(kMix1);
  const uint64x2_t mix2 = vdupq_n_u64(kMix2);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t p0 = vld1q_u64(pairs + 2 * i);      // a0 b0
    const uint64x2_t p1 = vld1q_u64(pairs + 2 * i + 2);  // a1 b1
    const uint64x2_t a = vzip1q_u64(p0, p1);
    const uint64x2_t b = vzip2q_u64(p0, p1);
    uint64x2_t x = vaddq_u64(b, golden);
    x = vaddq_u64(x, vshlq_n_u64(a, 6));
    x = vaddq_u64(x, vshrq_n_u64(a, 2));
    x = veorq_u64(a, x);
    x = vaddq_u64(x, golden);
    x = veorq_u64(x, vshrq_n_u64(x, 30));
    x = mul64_neon(x, mix1);
    x = veorq_u64(x, vshrq_n_u64(x, 27));
    x = mul64_neon(x, mix2);
    x = veorq_u64(x, vshrq_n_u64(x, 31));
    vst1q_u64(out + i, x);
  }
  scalar_kernel(pairs + 2 * i, n - i, out + i);
}

#endif  // PPSI_SIMD_NEON

// ---- Detection and dispatch ----

std::atomic<int> g_forced{-1};

Variant parse_name(const char* name) {
  if (std::strcmp(name, "scalar") == 0) return Variant::kScalar;
  if (std::strcmp(name, "sse2") == 0) return Variant::kSse2;
  if (std::strcmp(name, "avx2") == 0) return Variant::kAvx2;
  if (std::strcmp(name, "neon") == 0) return Variant::kNeon;
  return static_cast<Variant>(-1);
}

Variant resolve_env() {
  const char* env = std::getenv("PPSI_SIMD");
  if (env == nullptr || *env == '\0') return detected_variant();
  const Variant v = parse_name(env);
  if (static_cast<int>(v) < 0) {
    std::fprintf(stderr,
                 "ppsi: unknown PPSI_SIMD value '%s' "
                 "(want scalar|sse2|avx2|neon); using scalar\n",
                 env);
    return Variant::kScalar;
  }
  if (!variant_supported(v)) {
    std::fprintf(stderr,
                 "ppsi: PPSI_SIMD=%s is not supported on this CPU/build; "
                 "using scalar\n",
                 env);
    return Variant::kScalar;
  }
  return v;
}

}  // namespace

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kScalar: return "scalar";
    case Variant::kSse2: return "sse2";
    case Variant::kAvx2: return "avx2";
    case Variant::kNeon: return "neon";
  }
  return "unknown";
}

bool variant_supported(Variant v) {
  switch (v) {
    case Variant::kScalar:
      return true;
    case Variant::kSse2:
#ifdef PPSI_SIMD_X86
      return true;  // SSE2 is the x86-64 baseline
#else
      return false;
#endif
    case Variant::kAvx2:
#ifdef PPSI_SIMD_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Variant::kNeon:
#ifdef PPSI_SIMD_NEON
      return true;  // NEON is the AArch64 baseline
#else
      return false;
#endif
  }
  return false;
}

Variant detected_variant() {
#ifdef PPSI_SIMD_X86
  if (variant_supported(Variant::kAvx2)) return Variant::kAvx2;
  return Variant::kSse2;
#elif defined(PPSI_SIMD_NEON)
  return Variant::kNeon;
#else
  return Variant::kScalar;
#endif
}

Variant active_variant() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) {
    const auto v = static_cast<Variant>(forced);
    return variant_supported(v) ? v : Variant::kScalar;
  }
  static const Variant from_env = resolve_env();
  return from_env;
}

void force_variant(Variant v) {
  g_forced.store(static_cast<int>(v), std::memory_order_relaxed);
}

void clear_forced_variant() {
  g_forced.store(-1, std::memory_order_relaxed);
}

void hash_pairs_scalar(const std::uint64_t* pairs, std::size_t n,
                       std::uint64_t* out) {
  scalar_kernel(pairs, n, out);
}

void hash_pairs_with(Variant v, const std::uint64_t* pairs, std::size_t n,
                     std::uint64_t* out) {
  if (!variant_supported(v)) v = Variant::kScalar;
  switch (v) {
#ifdef PPSI_SIMD_X86
    case Variant::kSse2:
      sse2_kernel(pairs, n, out);
      return;
    case Variant::kAvx2:
      avx2_kernel(pairs, n, out);
      return;
#endif
#ifdef PPSI_SIMD_NEON
    case Variant::kNeon:
      neon_kernel(pairs, n, out);
      return;
#endif
    default:
      scalar_kernel(pairs, n, out);
      return;
  }
}

void hash_pairs(const std::uint64_t* pairs, std::size_t n,
                std::uint64_t* out) {
  hash_pairs_with(active_variant(), pairs, n, out);
}

}  // namespace ppsi::support::simd
